"""The replicated-log service across OS processes (UDP socket backend).

The same coordinator/applier stack as the asyncio service, but each node
lives in its own process: the parent never runs protocol code, it only
feeds the primary child client commands over the control pipe and watches
per-child apply progress come back.

Wire-level protocol over the existing control/results pipes:

* parent -> child: ``("cmds", [(command, arrival_wall), ...])`` -- a batch
  of client commands for the primary's coordinator (ignored by replicas).
* child -> parent: ``("applied", node_id, next_slot, commands_applied)`` --
  rate-limited apply progress, so the parent knows when every replica has
  caught up without streaming per-slot decisions.
* the final ``("result", ...)`` payload gains a ``"service"`` dict with the
  child's applied-log digest, counters, peak live-instance/timer readings,
  and (on the primary) the per-command latency list.

Latency stamps use ``time.time()`` wall clock: parent and children share
the machine, so cross-process stamps are directly comparable.
"""

from __future__ import annotations

import multiprocessing.connection
import random
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.agreement import ProtocolNode
from repro.core.params import ProtocolParams
from repro.runtime.socket_host import SocketCluster
from repro.service.applier import ReplicaApplier
from repro.service.coordinator import LogCoordinator


class ChildLogService:
    """Per-child service state: an applier everywhere, a coordinator on the
    primary.  Driven from the socket child's poll loop."""

    PROGRESS_INTERVAL_S = 0.1

    def __init__(self, node: ProtocolNode, service_cfg: dict, conn) -> None:
        self.node = node
        self.conn = conn
        self.primary = service_cfg["primary"]
        self.applier = ReplicaApplier(
            node,
            self.primary,
            retire_after_d=service_cfg.get("retire_after_d", 6.0),
        )
        self.coordinator: Optional[LogCoordinator] = None
        if node.node_id == self.primary:
            self.coordinator = LogCoordinator(
                node,
                window=service_cfg.get("window", 8),
                max_batch=service_cfg.get("max_batch", 64),
                clock=time.time,
                retired_watermark=lambda: self.applier.retire_watermark,
            )
            self.applier.on_retire = (
                lambda _watermark: self.coordinator.notify_retired()
            )
        self.peak_live_instances = 0
        self.peak_live_timers = 0
        self._last_progress = 0.0
        self._last_reported = (-1, -1)

    # ------------------------------------------------------------------
    # Pipe intake (called from the child poll loop)
    # ------------------------------------------------------------------
    #: Max slots answered per ("repair_req", ...) message.
    REPAIR_SPAN = 512

    def handle(self, msg: tuple) -> bool:
        """Consume one control message; True iff it was service traffic."""
        tag = msg[0]
        if tag == "cmds":
            if self.coordinator is not None:
                for command, arrival in msg[1]:
                    self.coordinator.submit_nowait(command, arrival)
            return True
        if tag == "repair_req":
            # The parent is healing a laggard: answer with this replica's
            # finalized outcomes for the requested slot range.  Outcomes
            # survive retirement (the applier keeps them), so even slots
            # whose protocol state is long gone can be served.
            _tag, lo, hi = msg
            hi = min(hi, lo + self.REPAIR_SPAN, self.applier.next_index)
            entries = []
            for index in range(lo, hi):
                outcome = self.applier.outcome(index)
                if outcome is not None:
                    entries.append((index, outcome))
            if entries:
                try:
                    self.conn.send(
                        ("outcomes", self.node.node_id, entries)
                    )
                except (BrokenPipeError, OSError):
                    pass
            return True
        if tag == "adopt":
            # f+1-vouched outcomes from the parent: adopt and report fresh
            # progress immediately so the catch-up is visible at once.
            self.applier.adopt_entries(msg[1])
            self._last_progress = 0.0
            self.tick_progress()
            return True
        return False

    def tick_progress(self) -> None:
        """Send an (applied, ...) progress report if it changed."""
        progress = (self.applier.next_index, self.applier.commands_applied)
        if progress == self._last_reported:
            return
        self._last_reported = progress
        try:
            self.conn.send(
                ("applied", self.node.node_id, progress[0], progress[1])
            )
        except (BrokenPipeError, OSError):
            pass

    def tick(self, host) -> None:
        """Sample state and report progress (rate-limited); poll-loop hook."""
        live = self.applier.live_slot_instances
        if live > self.peak_live_instances:
            self.peak_live_instances = live
        timers = host.live_timer_count()
        if timers > self.peak_live_timers:
            self.peak_live_timers = timers
        now = time.monotonic()
        if now - self._last_progress < self.PROGRESS_INTERVAL_S:
            return
        self._last_progress = now
        self.tick_progress()

    # ------------------------------------------------------------------
    # Final result
    # ------------------------------------------------------------------
    def result(self) -> dict:
        applier = self.applier
        out = {
            "digest": applier.digest(),
            "next_slot": applier.next_index,
            "commands_applied": applier.commands_applied,
            "skipped_slots": len(applier.skipped),
            "retired": applier.retired_count,
            "live_slot_instances": applier.live_slot_instances,
            "peak_live_instances": self.peak_live_instances,
            "peak_live_timers": self.peak_live_timers,
        }
        coordinator = self.coordinator
        if coordinator is not None:
            out.update(
                commands_submitted=coordinator.commands_submitted,
                commands_decided=coordinator.commands_decided,
                slots_launched=coordinator.slots_launched,
                slots_decided=coordinator.slots_decided,
                slots_aborted=coordinator.slots_aborted,
                peak_in_flight=coordinator.peak_in_flight,
                latencies=list(coordinator.latencies),
            )
        return out


@dataclass
class SocketServiceReport:
    """Parent-side view of one socket-backend service run."""

    elapsed_s: float
    commands_issued: int
    commands_decided: int
    #: Commands applied at every correct replica (min across them).
    commands_applied: int
    slots_launched: int
    slots_decided: int
    slots_aborted: int
    peak_in_flight: int
    peak_live_instances: int
    peak_live_timers: int
    latencies: list[float] = field(default_factory=list)
    identical_logs: bool = False
    digests: dict[int, str] = field(default_factory=dict)
    applied_per_replica: dict[int, int] = field(default_factory=dict)
    exit_reasons: dict[int, str] = field(default_factory=dict)
    #: Slot outcomes the parent shipped to laggards after f+1 vouching.
    repaired_entries: int = 0

    @property
    def commands_per_s(self) -> float:
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.commands_decided / self.elapsed_s

    @property
    def instances_per_s(self) -> float:
        if self.elapsed_s <= 0.0:
            return 0.0
        return (self.slots_decided + self.slots_aborted) / self.elapsed_s


class SocketLogService(SocketCluster):
    """Parent-side driver for the replicated-log service over UDP children.

    Construction spawns the children with service mode enabled (an applier
    per correct node, the coordinator in the primary's process);
    :meth:`run_workload` then plays the open-loop generator from the
    parent, shipping due arrivals down the primary's control pipe in
    batches and waiting for every correct child's ``applied`` progress to
    reach the offered total.
    """

    #: Max commands per ("cmds", ...) pipe message.
    PIPE_BATCH = 512

    def __init__(
        self,
        params: ProtocolParams,
        primary: int = 0,
        window: int = 8,
        max_batch: int = 64,
        retire_after_d: float = 6.0,
        **kwargs,
    ) -> None:
        kwargs.setdefault("value", None)
        self._service_cfg = {
            "primary": primary,
            "window": window,
            "max_batch": max_batch,
            "retire_after_d": retire_after_d,
        }
        self.primary = primary
        #: node_id -> (next_slot, commands_applied) progress reports.
        self.progress: dict[int, tuple[int, int]] = {}
        #: slot -> {peer_id: outcome} votes collected for laggard repair.
        self._repair_votes: dict[int, dict[int, object]] = {}
        self._last_repair = 0.0
        #: Slot outcomes shipped to laggards after f+1 agreement.
        self.repaired_entries = 0
        #: Workload progress for /status (set by run_workload).
        self.workload_issued = 0
        self.workload_total = 0
        super().__init__(params, general=primary, **kwargs)

    # ------------------------------------------------------------------
    # Pipe intake
    # ------------------------------------------------------------------
    def _dispatch(self, report, results, node_id, conn, msg) -> None:
        if msg[0] == "applied":
            _tag, sender_id, next_slot, applied = msg
            self.progress[sender_id] = (next_slot, applied)
            return
        if msg[0] == "outcomes":
            _tag, sender_id, entries = msg
            for index, outcome in entries:
                self._repair_votes.setdefault(index, {})[sender_id] = outcome
            return
        super()._dispatch(report, results, node_id, conn, msg)

    def _caught_up(self, total: int) -> bool:
        for node_id in self.correct_ids:
            if node_id in self._retired:
                continue
            held = self.progress.get(node_id)
            if held is None or held[1] < total:
                return False
        return True

    def _handle_death(self, node_id, proc) -> None:
        if proc.exitcode != 0 and not self._stop_sent and not self._closed:
            # The incarnation's applied log died with it; stale progress
            # must not satisfy _caught_up while the revenant re-applies.
            self.progress.pop(node_id, None)
        super()._handle_death(node_id, proc)

    # ------------------------------------------------------------------
    # Laggard repair (parent-brokered f+1 catch-up)
    # ------------------------------------------------------------------
    #: Minimum seconds between repair rounds.
    REPAIR_INTERVAL_S = 0.5
    #: Max slots requested/shipped per round.
    REPAIR_SPAN = 512

    def _pump_repair(self, settling: bool) -> None:
        """Heal laggards: broker f+1-vouched slot outcomes over the pipes.

        A replica respawned after a SIGKILL restarts with an empty applied
        log, and slots the cluster already retired will never re-decide for
        it -- without repair it stays behind forever.  The parent asks the
        peers that are ahead for their finalized outcomes, tallies them per
        slot, and ships every slot on which at least f+1 peers agree (so at
        least one *correct* replica vouches for it) to the laggard, which
        adopts contiguously and reports fresh progress.  Mid-run, only a
        gap beyond two pipeline windows triggers repair (ordinary skew
        heals by itself); once the workload is settling, any gap does.
        """
        now = time.monotonic()
        if now - self._last_repair < self.REPAIR_INTERVAL_S:
            return
        self._last_repair = now
        active = [
            node_id
            for node_id in self.correct_ids
            if node_id not in self._retired and node_id in self.conns
        ]
        fronts = {
            node_id: self.progress[node_id][0]
            for node_id in active
            if node_id in self.progress
        }
        if len(fronts) < 2:
            return
        lead = max(fronts.values())
        threshold = 0 if settling else 2 * self._service_cfg.get("window", 8)
        laggards = [
            node_id for node_id, front in fronts.items()
            if lead - front > threshold
        ]
        if not laggards:
            if self._repair_votes:
                self._repair_votes.clear()
            return
        f = self.params.f
        for lag_id in laggards:
            lo = fronts[lag_id]
            hi = min(lead, lo + self.REPAIR_SPAN)
            # Ship whatever contiguous f+1-agreed prefix the collected
            # votes support, then (re)request the range for the rest.
            entries: list[tuple[int, object]] = []
            for index in range(lo, hi):
                votes = self._repair_votes.get(index)
                if not votes:
                    break
                tally: dict = {}
                for outcome in votes.values():
                    tally[outcome] = tally.get(outcome, 0) + 1
                settled = [v for v, count in tally.items() if count >= f + 1]
                if len(settled) != 1:
                    break
                entries.append((index, settled[0]))
            if entries:
                conn = self.conns.get(lag_id)
                if conn is not None:
                    try:
                        conn.send(("adopt", entries))
                        self.repaired_entries += len(entries)
                    except (BrokenPipeError, OSError):
                        pass
            for peer_id in active:
                if peer_id == lag_id or fronts.get(peer_id, 0) <= lo:
                    continue
                conn = self.conns.get(peer_id)
                if conn is not None:
                    try:
                        conn.send(("repair_req", lo, hi))
                    except (BrokenPipeError, OSError):
                        pass

    # ------------------------------------------------------------------
    # Control-plane status
    # ------------------------------------------------------------------
    def status_snapshot(self) -> dict:
        out = super().status_snapshot()
        out["service"] = {
            "primary": self.primary,
            "commands_issued": self.workload_issued,
            "commands_total": self.workload_total,
            "repaired_entries": self.repaired_entries,
            "progress": {
                str(node_id): {"next_slot": held[0], "applied": held[1]}
                for node_id, held in sorted(self.progress.items())
            },
        }
        return out

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_workload(
        self,
        rate: float,
        total: int,
        seed: int = 0,
        poisson: bool = True,
        settle_timeout_s: float = 30.0,
    ) -> SocketServiceReport:
        """Sustain the open-loop workload to completion; returns the report.

        ``settle_timeout_s`` bounds how long the parent waits for every
        replica to catch up after the last arrival was issued.
        """
        if not self._started:
            self._start_children()
        rng = random.Random(seed)
        # Begin the arrival schedule at the shared epoch, when every child
        # is armed -- stamps stay comparable across the process tree.
        start = max(time.time(), self._epoch_wall or 0.0)
        offset = 0.0
        issued = 0
        settle_deadline: Optional[float] = None
        results = self._results
        outbox: list[tuple[str, float]] = []
        self.workload_total = total
        while True:
            self._pump_faults()
            self._pump_supervisor()
            self._pump_repair(settling=issued >= total)
            now_wall = time.time()
            while issued < total and start + offset <= now_wall:
                outbox.append((f"cmd{issued}", start + offset))
                issued += 1
                offset += rng.expovariate(rate) if poisson else 1.0 / rate
                if len(outbox) >= self.PIPE_BATCH:
                    break
            self.workload_issued = issued
            if outbox:
                conn = self.conns.get(self.primary)
                if conn is None:
                    if not self._supervise or self.primary in self._retired:
                        break  # primary gone for good: no progress possible
                    # Primary down but respawning: hold the outbox and keep
                    # supervising; commands ship once it rejoins.
                else:
                    try:
                        conn.send(("cmds", outbox))
                        outbox = []
                    except (BrokenPipeError, OSError):
                        # Death is classified by the supervisor pump; the
                        # outbox is retried against the next incarnation.
                        pass
            if issued >= total:
                if settle_deadline is None:
                    settle_deadline = time.monotonic() + settle_timeout_s
                if self._caught_up(total):
                    break
                if time.monotonic() > settle_deadline:
                    break
            waitable = list(self.conns.values())
            if not waitable:
                if self._supervise and (self._down or self._awaiting_port):
                    time.sleep(0.02)
                    continue
                break
            ready = multiprocessing.connection.wait(waitable, timeout=0.02)
            for conn in ready:
                node_id = next(
                    (i for i, c in self.conns.items() if c is conn), None
                )
                if node_id is None:
                    continue
                msg = self._safe_recv(node_id, conn)
                if msg is None:
                    continue
                self._dispatch(None, results, node_id, conn, msg)
        elapsed = time.time() - start
        self._send_stop()
        self._stop_sent = True
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            waitable = {
                node_id: conn
                for node_id, conn in self.conns.items()
                if node_id not in results
            }
            if not waitable:
                break
            ready = multiprocessing.connection.wait(
                list(waitable.values()), timeout=0.1
            )
            for conn in ready:
                node_id = next(i for i, c in waitable.items() if c is conn)
                msg = self._safe_recv(node_id, conn)
                if msg is None:
                    continue
                self._dispatch(None, results, node_id, conn, msg)
        report = self._service_report(elapsed, issued, results)
        self.close()
        return report

    def _service_report(
        self, elapsed_s: float, issued: int, results: dict[int, dict]
    ) -> SocketServiceReport:
        service_by_node = {
            node_id: payload.get("service")
            for node_id, payload in results.items()
            if node_id in self.correct_ids and payload.get("service")
        }
        digests = {
            node_id: svc["digest"] for node_id, svc in service_by_node.items()
        }
        applied = {
            node_id: svc["commands_applied"]
            for node_id, svc in service_by_node.items()
        }
        primary_svc = service_by_node.get(self.primary, {})
        identical = (
            len(digests) == len(
                [i for i in self.correct_ids if i not in self._retired]
            )
            and len(set(digests.values())) == 1
        )
        return SocketServiceReport(
            elapsed_s=elapsed_s,
            commands_issued=issued,
            commands_decided=primary_svc.get("commands_decided", 0),
            commands_applied=min(applied.values()) if applied else 0,
            slots_launched=primary_svc.get("slots_launched", 0),
            slots_decided=primary_svc.get("slots_decided", 0),
            slots_aborted=primary_svc.get("slots_aborted", 0),
            peak_in_flight=primary_svc.get("peak_in_flight", 0),
            peak_live_instances=max(
                (svc["peak_live_instances"] for svc in service_by_node.values()),
                default=0,
            ),
            peak_live_timers=max(
                (svc["peak_live_timers"] for svc in service_by_node.values()),
                default=0,
            ),
            latencies=list(primary_svc.get("latencies", ())),
            identical_logs=identical,
            digests=digests,
            applied_per_replica=applied,
            exit_reasons=dict(self._exit_reason),
            repaired_entries=self.repaired_entries,
        )


__all__ = ["ChildLogService", "SocketLogService", "SocketServiceReport"]
