"""The replicated-log service across OS processes (UDP socket backend).

The same coordinator/applier stack as the asyncio service, but each node
lives in its own process: the parent never runs protocol code, it only
feeds the primary child client commands over the control pipe and watches
per-child apply progress come back.

Wire-level protocol over the existing control/results pipes:

* parent -> child: ``("cmds", [(command, arrival_wall), ...])`` -- a batch
  of client commands for the primary's coordinator (ignored by replicas).
* child -> parent: ``("applied", node_id, next_slot, commands_applied)`` --
  rate-limited apply progress, so the parent knows when every replica has
  caught up without streaming per-slot decisions.
* the final ``("result", ...)`` payload gains a ``"service"`` dict with the
  child's applied-log digest, counters, peak live-instance/timer readings,
  and (on the primary) the per-command latency list.

Latency stamps use ``time.time()`` wall clock: parent and children share
the machine, so cross-process stamps are directly comparable.
"""

from __future__ import annotations

import multiprocessing.connection
import random
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.agreement import ProtocolNode
from repro.core.params import ProtocolParams
from repro.runtime.socket_host import SocketCluster
from repro.service.applier import ReplicaApplier
from repro.service.coordinator import LogCoordinator


class ChildLogService:
    """Per-child service state: an applier everywhere, a coordinator on the
    primary.  Driven from the socket child's poll loop."""

    PROGRESS_INTERVAL_S = 0.1

    def __init__(self, node: ProtocolNode, service_cfg: dict, conn) -> None:
        self.node = node
        self.conn = conn
        self.primary = service_cfg["primary"]
        self.applier = ReplicaApplier(
            node,
            self.primary,
            retire_after_d=service_cfg.get("retire_after_d", 6.0),
        )
        self.coordinator: Optional[LogCoordinator] = None
        if node.node_id == self.primary:
            self.coordinator = LogCoordinator(
                node,
                window=service_cfg.get("window", 8),
                max_batch=service_cfg.get("max_batch", 64),
                clock=time.time,
                retired_watermark=lambda: self.applier.retire_watermark,
            )
            self.applier.on_retire = (
                lambda _watermark: self.coordinator.notify_retired()
            )
        self.peak_live_instances = 0
        self.peak_live_timers = 0
        self._last_progress = 0.0
        self._last_reported = (-1, -1)

    # ------------------------------------------------------------------
    # Pipe intake (called from the child poll loop)
    # ------------------------------------------------------------------
    def handle(self, msg: tuple) -> bool:
        """Consume one control message; True iff it was service traffic."""
        if msg[0] != "cmds":
            return False
        if self.coordinator is not None:
            for command, arrival in msg[1]:
                self.coordinator.submit_nowait(command, arrival)
        return True

    def tick(self, host) -> None:
        """Sample state and report progress (rate-limited); poll-loop hook."""
        live = self.applier.live_slot_instances
        if live > self.peak_live_instances:
            self.peak_live_instances = live
        timers = host.live_timer_count()
        if timers > self.peak_live_timers:
            self.peak_live_timers = timers
        now = time.monotonic()
        if now - self._last_progress < self.PROGRESS_INTERVAL_S:
            return
        self._last_progress = now
        progress = (self.applier.next_index, self.applier.commands_applied)
        if progress == self._last_reported:
            return
        self._last_reported = progress
        try:
            self.conn.send(
                ("applied", self.node.node_id, progress[0], progress[1])
            )
        except (BrokenPipeError, OSError):
            pass

    # ------------------------------------------------------------------
    # Final result
    # ------------------------------------------------------------------
    def result(self) -> dict:
        applier = self.applier
        out = {
            "digest": applier.digest(),
            "next_slot": applier.next_index,
            "commands_applied": applier.commands_applied,
            "skipped_slots": len(applier.skipped),
            "retired": applier.retired_count,
            "live_slot_instances": applier.live_slot_instances,
            "peak_live_instances": self.peak_live_instances,
            "peak_live_timers": self.peak_live_timers,
        }
        coordinator = self.coordinator
        if coordinator is not None:
            out.update(
                commands_submitted=coordinator.commands_submitted,
                commands_decided=coordinator.commands_decided,
                slots_launched=coordinator.slots_launched,
                slots_decided=coordinator.slots_decided,
                slots_aborted=coordinator.slots_aborted,
                peak_in_flight=coordinator.peak_in_flight,
                latencies=list(coordinator.latencies),
            )
        return out


@dataclass
class SocketServiceReport:
    """Parent-side view of one socket-backend service run."""

    elapsed_s: float
    commands_issued: int
    commands_decided: int
    #: Commands applied at every correct replica (min across them).
    commands_applied: int
    slots_launched: int
    slots_decided: int
    slots_aborted: int
    peak_in_flight: int
    peak_live_instances: int
    peak_live_timers: int
    latencies: list[float] = field(default_factory=list)
    identical_logs: bool = False
    digests: dict[int, str] = field(default_factory=dict)
    applied_per_replica: dict[int, int] = field(default_factory=dict)
    exit_reasons: dict[int, str] = field(default_factory=dict)

    @property
    def commands_per_s(self) -> float:
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.commands_decided / self.elapsed_s

    @property
    def instances_per_s(self) -> float:
        if self.elapsed_s <= 0.0:
            return 0.0
        return (self.slots_decided + self.slots_aborted) / self.elapsed_s


class SocketLogService(SocketCluster):
    """Parent-side driver for the replicated-log service over UDP children.

    Construction spawns the children with service mode enabled (an applier
    per correct node, the coordinator in the primary's process);
    :meth:`run_workload` then plays the open-loop generator from the
    parent, shipping due arrivals down the primary's control pipe in
    batches and waiting for every correct child's ``applied`` progress to
    reach the offered total.
    """

    #: Max commands per ("cmds", ...) pipe message.
    PIPE_BATCH = 512

    def __init__(
        self,
        params: ProtocolParams,
        primary: int = 0,
        window: int = 8,
        max_batch: int = 64,
        retire_after_d: float = 6.0,
        **kwargs,
    ) -> None:
        kwargs.setdefault("value", None)
        self._service_cfg = {
            "primary": primary,
            "window": window,
            "max_batch": max_batch,
            "retire_after_d": retire_after_d,
        }
        self.primary = primary
        #: node_id -> (next_slot, commands_applied) progress reports.
        self.progress: dict[int, tuple[int, int]] = {}
        super().__init__(params, general=primary, **kwargs)

    # ------------------------------------------------------------------
    # Pipe intake
    # ------------------------------------------------------------------
    def _dispatch(self, report, results, node_id, conn, msg) -> None:
        if msg[0] == "applied":
            _tag, sender_id, next_slot, applied = msg
            self.progress[sender_id] = (next_slot, applied)
            return
        super()._dispatch(report, results, node_id, conn, msg)

    def _caught_up(self, total: int) -> bool:
        for node_id in self.correct_ids:
            if node_id in self._retired:
                continue
            held = self.progress.get(node_id)
            if held is None or held[1] < total:
                return False
        return True

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_workload(
        self,
        rate: float,
        total: int,
        seed: int = 0,
        poisson: bool = True,
        settle_timeout_s: float = 30.0,
    ) -> SocketServiceReport:
        """Sustain the open-loop workload to completion; returns the report.

        ``settle_timeout_s`` bounds how long the parent waits for every
        replica to catch up after the last arrival was issued.
        """
        if not self._started:
            self._start_children()
        rng = random.Random(seed)
        # Begin the arrival schedule at the shared epoch, when every child
        # is armed -- stamps stay comparable across the process tree.
        start = max(time.time(), self._epoch_wall or 0.0)
        offset = 0.0
        issued = 0
        settle_deadline: Optional[float] = None
        results = self._results
        outbox: list[tuple[str, float]] = []
        while True:
            if self._driver is not None:
                self._driver.pump()
            self._pump_supervisor()
            now_wall = time.time()
            while issued < total and start + offset <= now_wall:
                outbox.append((f"cmd{issued}", start + offset))
                issued += 1
                offset += rng.expovariate(rate) if poisson else 1.0 / rate
                if len(outbox) >= self.PIPE_BATCH:
                    break
            if outbox:
                conn = self.conns.get(self.primary)
                if conn is None:
                    break  # primary died; the run cannot make progress
                try:
                    conn.send(("cmds", outbox))
                except (BrokenPipeError, OSError):
                    break
                outbox = []
            if issued >= total:
                if settle_deadline is None:
                    settle_deadline = time.monotonic() + settle_timeout_s
                if self._caught_up(total):
                    break
                if time.monotonic() > settle_deadline:
                    break
            waitable = list(self.conns.values())
            if not waitable:
                break
            ready = multiprocessing.connection.wait(waitable, timeout=0.02)
            for conn in ready:
                node_id = next(
                    (i for i, c in self.conns.items() if c is conn), None
                )
                if node_id is None:
                    continue
                msg = self._safe_recv(node_id, conn)
                if msg is None:
                    continue
                self._dispatch(None, results, node_id, conn, msg)
        elapsed = time.time() - start
        self._send_stop()
        self._stop_sent = True
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            waitable = {
                node_id: conn
                for node_id, conn in self.conns.items()
                if node_id not in results
            }
            if not waitable:
                break
            ready = multiprocessing.connection.wait(
                list(waitable.values()), timeout=0.1
            )
            for conn in ready:
                node_id = next(i for i, c in waitable.items() if c is conn)
                msg = self._safe_recv(node_id, conn)
                if msg is None:
                    continue
                self._dispatch(None, results, node_id, conn, msg)
        report = self._service_report(elapsed, issued, results)
        self.close()
        return report

    def _service_report(
        self, elapsed_s: float, issued: int, results: dict[int, dict]
    ) -> SocketServiceReport:
        service_by_node = {
            node_id: payload.get("service")
            for node_id, payload in results.items()
            if node_id in self.correct_ids and payload.get("service")
        }
        digests = {
            node_id: svc["digest"] for node_id, svc in service_by_node.items()
        }
        applied = {
            node_id: svc["commands_applied"]
            for node_id, svc in service_by_node.items()
        }
        primary_svc = service_by_node.get(self.primary, {})
        identical = (
            len(digests) == len(
                [i for i in self.correct_ids if i not in self._retired]
            )
            and len(set(digests.values())) == 1
        )
        return SocketServiceReport(
            elapsed_s=elapsed_s,
            commands_issued=issued,
            commands_decided=primary_svc.get("commands_decided", 0),
            commands_applied=min(applied.values()) if applied else 0,
            slots_launched=primary_svc.get("slots_launched", 0),
            slots_decided=primary_svc.get("slots_decided", 0),
            slots_aborted=primary_svc.get("slots_aborted", 0),
            peak_in_flight=primary_svc.get("peak_in_flight", 0),
            peak_live_instances=max(
                (svc["peak_live_instances"] for svc in service_by_node.values()),
                default=0,
            ),
            peak_live_timers=max(
                (svc["peak_live_timers"] for svc in service_by_node.values()),
                default=0,
            ),
            latencies=list(primary_svc.get("latencies", ())),
            identical_logs=identical,
            digests=digests,
            applied_per_replica=applied,
            exit_reasons=dict(self._exit_reason),
        )


__all__ = ["ChildLogService", "SocketLogService", "SocketServiceReport"]
