"""Open-loop workload generator for the replicated-log service.

Open-loop means the arrival process does not slow down when the service
does: command ``i`` *arrives* at its scheduled instant (fixed ``1/rate``
spacing, or exponential gaps for a Poisson process) regardless of how the
system is keeping up.  Each command's latency stamp is the **theoretical**
arrival instant, so when back-pressure makes the generator fall behind, the
waiting shows up as measured queueing delay -- the honest methodology for
"millions of users" claims, where closed-loop generators famously flatter
the tail.

The generator drives any async ``submit(command, arrival)`` callable
(:meth:`~repro.service.coordinator.LogCoordinator.submit` locally, or a
pipe-writer for the socket backend's parent-side driver).
"""

from __future__ import annotations

import random
import time
from typing import Awaitable, Callable, Optional

SubmitFn = Callable[[object, float], Awaitable[None]]


class OpenLoopWorkload:
    """Generates ``total`` commands at ``rate`` per second."""

    def __init__(
        self,
        submit: SubmitFn,
        rate: float,
        total: int,
        seed: int = 0,
        poisson: bool = True,
        prefix: str = "cmd",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if total < 1:
            raise ValueError(f"total must be >= 1, got {total}")
        self.submit = submit
        self.rate = rate
        self.total = total
        self.seed = seed
        self.poisson = poisson
        self.prefix = prefix
        self.clock = clock
        self.issued = 0
        self.elapsed_s = 0.0
        #: Worst lateness of an actual submit behind its scheduled arrival
        #: (seconds) -- how far back-pressure pushed the generator.
        self.max_lag_s = 0.0

    async def run(self) -> None:
        """Issue every command; returns once the last submit is accepted."""
        import asyncio

        rng = random.Random(self.seed)
        clock = self.clock
        submit = self.submit
        rate = self.rate
        poisson = self.poisson
        prefix = self.prefix
        start = clock()
        offset = 0.0  # scheduled arrival, seconds from start
        for i in range(self.total):
            if i:
                offset += rng.expovariate(rate) if poisson else 1.0 / rate
            arrival = start + offset
            ahead = arrival - clock()
            if ahead > 0.0:
                await asyncio.sleep(ahead)
            else:
                lag = -ahead
                if lag > self.max_lag_s:
                    self.max_lag_s = lag
            await submit(f"{prefix}{i}", arrival)
            self.issued += 1
        self.elapsed_s = clock() - start

    @property
    def offered_rate(self) -> float:
        """Commands actually issued per wall second."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.issued / self.elapsed_s


__all__ = ["OpenLoopWorkload", "SubmitFn"]
