"""Primary-side log coordinator: a bounded pipeline of slot agreements.

Turns a stream of client commands into slot-indexed
:class:`~repro.extensions.concurrent.ConcurrentGeneral` invocations:

* **Batching.**  Up to ``max_batch`` queued commands become one agreement
  value (a tuple of command strings), so a single protocol execution
  carries many commands -- the ratio is the service's main throughput
  lever, bounded above by the wire layer's frame-size limit.
* **Windowing.**  At most ``window`` slots are in flight (launched but not
  yet returned at the primary).  The window bounds message pressure; new
  slots launch the moment an in-flight slot returns.
* **Retirement gate.**  Live protocol state is decided-but-not-yet-retired
  slots as much as in-flight ones, and the retirement delay (``6d``) can
  dwarf a fast-path decide -- so a window on undecided slots alone does
  *not* bound live state.  When wired to the local applier's retirement
  watermark (``retired_watermark``), the coordinator additionally refuses
  to launch while more than ``unretired_cap`` (default ``3 * window``)
  slots are launched but unretired, turning the service's O(window)
  live-state bound into an enforced invariant instead of an emergent one.
  The applier pokes :meth:`notify_retired` as its watermark advances so a
  gated pipeline resumes without waiting for a decision.
* **Back-pressure.**  The submit queue is bounded; :meth:`submit` awaits
  until space frees.  An open-loop client that stamps arrivals at their
  theoretical instants therefore *measures* the queueing this causes
  instead of silently throttling the offered load.
* **Abort recovery.**  A slot that returns BOTTOM aborted identically at
  every correct replica (Agreement covers BOTTOM), and the applier records
  it as a skip -- so the coordinator re-enqueues the batch at the *front*
  of the queue for a fresh slot.  Commands are never lost and never
  applied twice.

Latency stamps use a wall-clock ``clock`` (monotonic seconds), decoupled
from protocol time: command latency is client-visible time from (stamped)
arrival to the slot's decision at the primary.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Callable, Optional

from repro.core.agreement import Decision, ProtocolNode
from repro.core.params import BOTTOM
from repro.extensions.concurrent import ConcurrentGeneral
from repro.extensions.state_machine import DecisionTap


class LogCoordinator(DecisionTap):
    """Pipelines batched client commands through slot-indexed agreement."""

    def __init__(
        self,
        node: ProtocolNode,
        window: int = 8,
        max_batch: int = 64,
        max_queue: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        retired_watermark: Optional[Callable[[], int]] = None,
        unretired_cap: Optional[int] = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.window = window
        self.max_batch = max_batch
        #: Local retirement watermark (first slot not yet retired); when
        #: set, launches gate on ``unretired_cap`` as documented above.
        self.retired_watermark = retired_watermark
        self.unretired_cap = (
            unretired_cap if unretired_cap is not None else 3 * window
        )
        #: Submit-queue bound: two full windows' worth of batched commands.
        self.max_queue = (
            max_queue if max_queue is not None else 2 * window * max_batch
        )
        self.clock = clock
        self._queue: deque[tuple[object, float]] = deque()
        self._in_flight: dict[int, list[tuple[object, float]]] = {}
        #: Decide-latency per command, seconds from stamped arrival.
        self.latencies: list[float] = []
        self.commands_submitted = 0
        self.commands_decided = 0
        self.slots_launched = 0
        self.slots_decided = 0
        self.slots_aborted = 0
        self.peak_in_flight = 0
        self._space = asyncio.Event()
        self._space.set()
        self._drained = asyncio.Event()
        self._drained.set()
        self.general = ConcurrentGeneral(node)
        super().__init__(node)

    # ------------------------------------------------------------------
    # Client session API
    # ------------------------------------------------------------------
    async def submit(self, command: object, arrival: Optional[float] = None) -> None:
        """Enqueue one command, awaiting queue space (back-pressure).

        ``arrival`` is the command's latency-stamp origin (``clock()``
        units); an open-loop generator passes the theoretical arrival
        instant so queueing delay counts against the latency.
        """
        while len(self._queue) >= self.max_queue:
            self._space.clear()
            await self._space.wait()
        self.submit_nowait(command, arrival)

    def submit_nowait(self, command: object, arrival: Optional[float] = None) -> None:
        """Enqueue one command without waiting (queue bound not enforced)."""
        stamp = arrival if arrival is not None else self.clock()
        self._queue.append((command, stamp))
        self.commands_submitted += 1
        self._drained.clear()
        self._launch()

    @property
    def backlog(self) -> int:
        """Commands queued but not yet assigned to a slot."""
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Slots launched but not yet returned at the primary."""
        return len(self._in_flight)

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    @property
    def unretired(self) -> int:
        """Slots launched but not yet retired at the local replica."""
        if self.retired_watermark is None:
            return len(self._in_flight)
        return self.general.next_index - self.retired_watermark()

    def notify_retired(self) -> None:
        """Re-open the launch gate after the retirement watermark moved."""
        self._launch()

    def _launch(self) -> None:
        queue = self._queue
        gated = self.retired_watermark is not None
        while queue and len(self._in_flight) < self.window:
            if gated and self.unretired >= self.unretired_cap:
                break
            batch = []
            while queue and len(batch) < self.max_batch:
                batch.append(queue.popleft())
            slot = self.general.propose(tuple(cmd for cmd, _stamp in batch))
            self._in_flight[slot] = batch
            self.slots_launched += 1
            if len(self._in_flight) > self.peak_in_flight:
                self.peak_in_flight = len(self._in_flight)
        if len(queue) < self.max_queue and not self._space.is_set():
            self._space.set()

    def _on_decision(self, decision: Decision) -> None:
        general = decision.general
        if not (
            isinstance(general, tuple) and general[0] == self.node.node_id
        ):
            return
        batch = self._in_flight.pop(general[1], None)
        if batch is None:
            return  # not ours / already settled (re-decision after churn)
        if decision.value is BOTTOM:
            self.slots_aborted += 1
            # Every correct replica skipped this slot identically; the
            # commands go back to the head of the queue for a fresh slot.
            self._queue.extendleft(reversed(batch))
        else:
            self.slots_decided += 1
            now = self.clock()
            self.commands_decided += len(batch)
            latencies = self.latencies
            for _cmd, stamp in batch:
                latencies.append(now - stamp)
        self._launch()
        if not self._queue and not self._in_flight:
            self._drained.set()

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    @property
    def drained(self) -> bool:
        """True when every submitted command's slot has decided."""
        return self._drained.is_set()

    async def drain(self, timeout_s: Optional[float] = None) -> None:
        """Wait until every submitted command's slot has decided."""
        await asyncio.wait_for(self._drained.wait(), timeout_s)


__all__ = ["LogCoordinator"]
