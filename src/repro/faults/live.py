"""Live fault drivers: :class:`~repro.faults.timeline.FaultScript` on real time.

The sim installer (:meth:`FaultScript.install`) schedules one simulator
event per action.  This module interprets the **same** timeline data against
the wall-clock backends, so one JSON-able spec drives all three:

* :class:`AsyncioFaultDriver` -- in-process: actions fire as
  ``loop.call_later`` wake-ups against an :class:`~repro.runtime.aio.
  AsyncioCluster`.  Link faults go to the shared transport's sender-side
  drop matrix; ``Crash``/``Restart`` stun and revive the in-process nodes
  with the sim path's exact semantics (shared wipe/scramble helpers).
* :class:`WallClockFaultDriver` -- parent-side, for a
  :class:`~repro.runtime.socket_host.SocketCluster` of OS processes:
  ``Crash(state_loss=True)`` SIGKILLs the child (the heap is *really*
  gone), ``Crash(state_loss=False)`` SIGSTOPs it (a stun), ``Restart``
  SIGCONTs or respawns via the cluster's supervisor, and link faults are
  broadcast as control-pipe directives every child applies to its own
  sender.  Fire times are computed on the shared epoch, so ``at_d``
  offsets mean exactly what they mean in sim.

Support matrix: ``SwapStrategy`` and ``Havoc`` are sim-only (they need
in-process node surgery / the sim network's spurious-injection hook) and
are rejected up front by :func:`validate_live_script`; a live ``SwapPolicy``
must name a registered policy (:data:`LIVE_POLICY_BUILDERS`) so it can
travel over a control pipe.

:func:`run_chaos_agreement` is the paper's self-stabilization claim as a
live demo: SIGKILL ``f`` nodes mid-agreement with full state loss, let the
supervisor heal them with scrambled state, and verify every node -- the
revenants included -- converges to the agreed value within a recovery
bound.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.params import ProtocolParams
from repro.faults.timeline import (
    Coherent,
    Crash,
    FaultAction,
    FaultScript,
    Havoc,
    Heal,
    Isolate,
    Partition,
    Reconnect,
    Restart,
    SwapPolicy,
    SwapStrategy,
)
from repro.faults.transient import TransientFaultInjector, wipe_protocol_state
from repro.net.delivery import BurstyDelay, DeliveryPolicy, FixedDelay, UniformDelay

if TYPE_CHECKING:  # annotations only: no runtime import cycle
    from repro.core.messages import Value
    from repro.runtime.aio import AsyncioCluster
    from repro.runtime.socket_host import SocketCluster, SocketRunReport


# ---------------------------------------------------------------------------
# Live delivery-policy builders
# ---------------------------------------------------------------------------
# Same numeric recipes as the sim's POLICY_BUILDERS, but parameterized by
# (params, now_fn) instead of a sim Cluster so a policy *name* -- the only
# form that can travel over a control pipe -- resolves identically on every
# backend.
def _live_uniform(params: ProtocolParams, now_fn) -> DeliveryPolicy:
    return UniformDelay(0.1 * params.delta, params.delta)


def _live_fast(params: ProtocolParams, now_fn) -> DeliveryPolicy:
    return UniformDelay(0.01 * params.delta, 0.1 * params.delta)


def _live_default(params: ProtocolParams, now_fn) -> DeliveryPolicy:
    # The wall-clock backends' spawn-time default: headroom under delta for
    # loop/kernel jitter.
    return UniformDelay(0.05 * params.delta, 0.5 * params.delta)


def _live_delay_storm(params: ProtocolParams, now_fn) -> DeliveryPolicy:
    return UniformDelay(0.9 * params.delta, params.delta)


def _live_fixed_max(params: ProtocolParams, now_fn) -> DeliveryPolicy:
    return FixedDelay(params.delta)


def _live_bursty(params: ProtocolParams, now_fn) -> DeliveryPolicy:
    return BurstyDelay(
        now_fn=now_fn,
        period=2.0 * params.d,
        fast_max=0.2 * params.delta,
        slow_min=0.8 * params.delta,
        slow_max=params.delta,
    )


LIVE_POLICY_BUILDERS: dict[
    str, Callable[[ProtocolParams, Callable[[], float]], DeliveryPolicy]
] = {
    "uniform": _live_uniform,
    "fast": _live_fast,
    "live_default": _live_default,
    "delay_storm": _live_delay_storm,
    "fixed_max": _live_fixed_max,
    "bursty": _live_bursty,
}


def build_live_policy(
    name: str, params: ProtocolParams, now_fn: Callable[[], float]
) -> DeliveryPolicy:
    """Resolve a policy name against (params, a live clock)."""
    try:
        return LIVE_POLICY_BUILDERS[name](params, now_fn)
    except KeyError:
        known = ", ".join(sorted(LIVE_POLICY_BUILDERS))
        raise KeyError(f"unknown live policy {name!r} (known: {known})") from None


# ---------------------------------------------------------------------------
# Validation: which actions a live backend can honour
# ---------------------------------------------------------------------------
_LIVE_UNSUPPORTED = (SwapStrategy, Havoc)


def validate_live_script(script: FaultScript, backend: str = "socket") -> None:
    """Reject actions a live driver cannot honour, *before* the run starts."""
    for action in script.actions:
        if isinstance(action, _LIVE_UNSUPPORTED):
            raise ValueError(
                f"{action.kind!r} is not supported by the {backend} fault "
                f"driver (sim only: it needs in-process node surgery or the "
                f"sim network's spurious-injection hook)"
            )
        if isinstance(action, SwapPolicy) and not isinstance(action.policy, str):
            raise ValueError(
                "a live SwapPolicy must name a registered policy (one of: "
                + ", ".join(sorted(LIVE_POLICY_BUILDERS))
                + "); factories cannot travel over a control pipe"
            )
        if isinstance(action, SwapPolicy) and action.policy not in LIVE_POLICY_BUILDERS:
            known = ", ".join(sorted(LIVE_POLICY_BUILDERS))
            raise ValueError(
                f"unknown live policy {action.policy!r} (known: {known})"
            )


# ---------------------------------------------------------------------------
# Shared link-fault dispatch (asyncio transport and socket children)
# ---------------------------------------------------------------------------
def apply_transport_fault(
    transport, params: ProtocolParams, kind: str, args: dict
) -> None:
    """Apply one link-level fault directive to a live transport.

    Used both by :class:`AsyncioFaultDriver` (directly) and by every socket
    child when a ``("fault", kind, args)`` control message arrives, so the
    two wall-clock backends interpret a directive identically.
    """
    if kind == "partition":
        transport.set_partition(frozenset(args["island"]))
    elif kind == "heal":
        transport.heal_partitions()
    elif kind == "isolate":
        transport.isolate(args["nodes"])
    elif kind == "reconnect":
        transport.reconnect(args["nodes"])
    elif kind == "policy":
        transport.set_policy(
            build_live_policy(args["policy"], params, transport.now)
        )
    else:
        raise ValueError(f"unknown transport fault {kind!r}")


# ---------------------------------------------------------------------------
# In-process crash/restart (sim-parity semantics, shared helpers)
# ---------------------------------------------------------------------------
def crash_in_process(node, state_loss: bool) -> None:
    """Stun an in-process node: the live analogue of the sim ``Crash``."""
    node.crash()
    node.cancel_timers()
    if state_loss:
        wipe_protocol_state(node)


def restart_in_process(
    node, injector: Optional[TransientFaultInjector] = None
) -> None:
    """Revive an in-process node (no-op unless crashed), sim semantics.

    With an injector, the revived node's state is scrambled -- the paper's
    arbitrary-state recovery model.  The background cleanup tick is
    re-armed (its periodic chain died with the crash).
    """
    if not node.crashed:
        return
    node.resume()
    if injector is not None and hasattr(node, "instances"):
        injector.corrupt_node(node)
    if hasattr(node, "cleanup_interval_d"):
        node.every_local(
            node.cleanup_interval_d * node.params.d,
            node._cleanup_tick,
            tag=f"cleanup:{node.node_id}",
        )


# ---------------------------------------------------------------------------
# Asyncio driver
# ---------------------------------------------------------------------------
class AsyncioFaultDriver:
    """Interpret a :class:`FaultScript` against an :class:`AsyncioCluster`.

    Construct inside the running loop and call :meth:`install` once; every
    action becomes a ``loop.call_later`` wake-up at ``at_d * d`` protocol
    units after install (scaled by the transport's ``time_scale``).  Call
    :meth:`cancel` at teardown so unfired actions don't outlive the run.
    """

    def __init__(self, script: FaultScript, cluster: "AsyncioCluster") -> None:
        validate_live_script(script, backend="asyncio")
        self.script = script
        self.cluster = cluster
        self._handles: list = []
        self.fired: list[str] = []

    def install(self) -> None:
        transport = self.cluster.transport
        d = self.cluster.params.d
        ordered = sorted(
            enumerate(self.script.actions), key=lambda pair: pair[1].at_d
        )
        for index, action in ordered:
            self._handles.append(
                transport.loop.call_later(
                    action.at_d * d * transport.time_scale,
                    self._fire,
                    action,
                    index,
                )
            )

    def cancel(self) -> None:
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()

    # ------------------------------------------------------------------
    def _fire(self, action: FaultAction, index: int) -> None:
        cluster = self.cluster
        transport = cluster.transport
        tracer = cluster.tracer
        if tracer.enabled:
            tracer.record(transport.now(), None, "timeline", action=action.kind)
        else:
            tracer.bump("timeline")
        if isinstance(action, Partition):
            transport.set_partition(frozenset(action.island))
        elif isinstance(action, Heal):
            transport.heal_partitions()
        elif isinstance(action, Isolate):
            transport.isolate(action.nodes)
        elif isinstance(action, Reconnect):
            transport.reconnect(action.nodes)
        elif isinstance(action, SwapPolicy):
            transport.set_policy(
                build_live_policy(action.policy, cluster.params, transport.now)
            )
        elif isinstance(action, Crash):
            for node_id in action.nodes:
                crash_in_process(cluster.nodes[node_id], action.state_loss)
        elif isinstance(action, Restart):
            injector = None
            if action.scramble:
                injector = TransientFaultInjector(
                    cluster.params,
                    cluster.rng.split(f"live/restart/{index}@{action.at_d!r}"),
                    value_pool=list(action.value_pool),
                    generals=list(action.generals),
                )
            for node_id in action.nodes:
                restart_in_process(cluster.nodes[node_id], injector)
        elif isinstance(action, Coherent):
            pass  # trace marker only, recorded above
        self.fired.append(action.kind)


# ---------------------------------------------------------------------------
# Socket (parent-side) driver
# ---------------------------------------------------------------------------
class WallClockFaultDriver:
    """Interpret a :class:`FaultScript` against a :class:`SocketCluster`.

    The parent's agreement loop calls :meth:`pump` every iteration (~50 ms),
    which fires every action whose shared-epoch deadline has passed --
    ``at_d`` is measured from the cluster epoch, the same zero the children
    measure protocol time from, so offsets mean what they mean in sim (to
    one polling quantum).

    Process faults act on the cluster's supervisor surface
    (:meth:`SocketCluster.kill_node` / :meth:`SocketCluster.revive_node`);
    link faults are broadcast as ``("fault", kind, args)`` control messages
    that every *currently live* child applies to its own sender.  A child
    respawned later starts with a clean drop matrix -- scripts that mix
    churn with partitions should order their actions accordingly.
    """

    def __init__(self, script: FaultScript, cluster: "SocketCluster") -> None:
        validate_live_script(script, backend="socket")
        self.script = script
        self.cluster = cluster
        self._queue: list[tuple[float, int, FaultAction]] = []
        self._started = False
        self.fired: list[str] = []

    def start(self, epoch_wall: float) -> None:
        """Arm the timeline once the cluster epoch is known."""
        params = self.cluster.params
        scale = self.cluster.time_scale
        epoch_mono = time.monotonic() - (time.time() - epoch_wall)
        ordered = sorted(
            enumerate(self.script.actions), key=lambda pair: pair[1].at_d
        )
        self._queue = [
            (epoch_mono + action.at_d * params.d * scale, index, action)
            for index, action in ordered
        ]
        self._started = True

    @property
    def done(self) -> bool:
        return self._started and not self._queue

    def pump(self) -> None:
        """Fire every action whose deadline has passed."""
        if not self._started:
            return
        now = time.monotonic()
        while self._queue and self._queue[0][0] <= now:
            _when, index, action = self._queue.pop(0)
            self._apply(action, index)
            self.fired.append(action.kind)

    # ------------------------------------------------------------------
    def _apply(self, action: FaultAction, index: int) -> None:
        cluster = self.cluster
        if isinstance(action, Crash):
            for node_id in action.nodes:
                cluster.kill_node(node_id, state_loss=action.state_loss)
        elif isinstance(action, Restart):
            for node_id in action.nodes:
                cluster.revive_node(node_id, scramble=action.scramble)
        elif isinstance(action, Partition):
            cluster.broadcast_fault("partition", {"island": list(action.island)})
        elif isinstance(action, Heal):
            cluster.broadcast_fault("heal", {})
        elif isinstance(action, Isolate):
            cluster.broadcast_fault("isolate", {"nodes": list(action.nodes)})
        elif isinstance(action, Reconnect):
            cluster.broadcast_fault("reconnect", {"nodes": list(action.nodes)})
        elif isinstance(action, SwapPolicy):
            cluster.broadcast_fault("policy", {"policy": action.policy})
        elif isinstance(action, Coherent):
            pass  # marker only


# ---------------------------------------------------------------------------
# The chaos runner: the paper's claim as a live demo
# ---------------------------------------------------------------------------
@dataclass
class ChaosReport:
    """Outcome of one chaos run: kill f nodes live, verify re-convergence."""

    report: "SocketRunReport"
    value: object
    general: int
    victims: list[int]
    kill_at_d: float
    recovery_bound_d: float
    #: every correct node decided, and on a single common value
    agreed: bool = False
    #: that common value is the proposed one
    converged: bool = False
    #: every victim was respawned and decided *after* its kill
    victims_recovered: bool = False
    #: worst victim decision latency since its kill, in units of d
    recovery_latency_d: Optional[float] = None
    per_victim_latency_d: dict[int, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """The live self-stabilization verdict, teardown hygiene included."""
        return (
            self.agreed
            and self.converged
            and self.victims_recovered
            and (self.recovery_latency_d is None
                 or self.recovery_latency_d <= self.recovery_bound_d)
            and self.report.clean_exit
        )


def run_chaos_agreement(
    n: int = 4,
    f: int = 1,
    seed: int = 0,
    value: "Value" = "v",
    general: int = 0,
    time_scale: float = 0.02,
    kill_at_d: float = 1.0,
    victims: Optional[list[int]] = None,
    recovery_bound_d: Optional[float] = None,
    timeout_units: Optional[float] = None,
    restart_backoff_s: float = 0.1,
    trace: bool = False,
    delta: float = 1.0,
    rho: float = 0.0,
    codec: Optional[str] = None,
) -> ChaosReport:
    """SIGKILL ``f`` nodes mid-agreement and verify live re-convergence.

    The General proposes at the epoch and re-proposes the same value every
    couple of ``d`` (``propose`` is pacing-guarded, so extra attempts are
    silently refused until the Sending Validity Criteria allow a same-value
    re-initiation after ``Delta_v``).  Victims are SIGKILLed with full state
    loss; the cluster supervisor respawns them with *scrambled* protocol
    state (the arbitrary-state model) and re-brokers their UDP addresses to
    the survivors.  The run converges when every correct node's **current
    incarnation** has decided -- i.e. each revenant re-decides via a later
    initiation wave -- and the verdict additionally checks every latest
    decision equals the proposed value within ``recovery_bound_d``.
    """
    from repro.runtime.socket_host import SocketCluster

    params = ProtocolParams(n=n, f=f, delta=delta, rho=rho)
    if victims is None:
        victims = [i for i in reversed(range(n)) if i != general][:f]
    victims = list(victims)
    if general in victims:
        raise ValueError("the General cannot be a chaos victim (it drives "
                         "the re-initiation wave the revenants converge on)")
    if recovery_bound_d is None:
        # A same-value re-initiation is legal Delta_v after the first wave,
        # and the new wave completes within Delta_agr; the rest is margin
        # for backoff, respawn, and scheduling.
        recovery_bound_d = (params.delta_v + 2.0 * params.delta_agr) / params.d
    if timeout_units is None:
        timeout_units = (
            kill_at_d * params.d + params.delta_v + 3.0 * params.delta_agr
        )
    script = FaultScript(
        tuple(
            Crash(at_d=kill_at_d + i * 1.0, nodes=(victim,), state_loss=True)
            for i, victim in enumerate(victims)
        )
    )
    cluster = SocketCluster(
        params,
        seed=seed,
        time_scale=time_scale,
        value=value,
        general=general,
        timeout_units=timeout_units,
        trace=trace,
        supervise=True,
        scramble_on_restart=True,
        restart_backoff_s=restart_backoff_s,
        fault_script=script,
        repropose_every_d=2.0,
        value_pool=(value, "B", "C"),
        codec=codec,
    )
    try:
        report = cluster.run_agreement()
    finally:
        cluster.close()

    chaos = ChaosReport(
        report=report,
        value=value,
        general=general,
        victims=victims,
        kill_at_d=kill_at_d,
        recovery_bound_d=recovery_bound_d,
    )
    decisions = report.decisions
    decided = [
        node_id
        for node_id in report.correct_ids
        if node_id in decisions and decisions[node_id].decided
    ]
    values = {decisions[node_id].value for node_id in decided}
    chaos.agreed = set(decided) == set(report.correct_ids) and len(values) == 1
    chaos.converged = chaos.agreed and values == {value}

    recovered = True
    worst: Optional[float] = None
    for i, victim in enumerate(victims):
        kill_units = (kill_at_d + i * 1.0) * params.d
        decision = decisions.get(victim)
        if (
            decision is None
            or not decision.decided
            or decision.value != value
            or decision.returned_real <= kill_units
            or report.restart_counts.get(victim, 0) < 1
        ):
            recovered = False
            continue
        latency_d = (decision.returned_real - kill_units) / params.d
        chaos.per_victim_latency_d[victim] = latency_d
        worst = latency_d if worst is None else max(worst, latency_d)
    chaos.victims_recovered = recovered
    chaos.recovery_latency_d = worst
    return chaos


__all__ = [
    "AsyncioFaultDriver",
    "ChaosReport",
    "LIVE_POLICY_BUILDERS",
    "WallClockFaultDriver",
    "apply_transport_fault",
    "build_live_policy",
    "crash_in_process",
    "restart_in_process",
    "run_chaos_agreement",
    "validate_live_script",
]
