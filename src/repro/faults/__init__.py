"""Fault models: permanent Byzantine behaviour and transient corruption.

* :mod:`repro.faults.byzantine` -- Byzantine node strategies, from silent
  crashes to equivocating Generals and two-faced quorum-splitting
  participants.  A Byzantine node is *not* a modified protocol node: it is a
  raw :class:`~repro.node.base.Node` that can emit any protocol message to
  any subset at any time, which is exactly the adversary's power in the
  model (the network still authenticates its identity).
* :mod:`repro.faults.transient` -- the transient-fault injector: scrambles
  node protocol state, clock readings, and puts forged messages in flight,
  modelling the paper's "each node may be at an arbitrary state" starting
  condition.
* :mod:`repro.faults.timeline` -- declarative fault timelines: a
  :class:`~repro.faults.timeline.FaultScript` of timed, composable
  adversary actions (partition/heal, policy swaps, node churn, strategy
  hot-swaps, scheduled havoc), deterministic from the master seed and
  replayable at any worker count.
"""

from repro.faults.byzantine import (
    ByzantineNode,
    CrashStrategy,
    EquivocatingGeneralStrategy,
    MirrorParticipantStrategy,
    NoiseStrategy,
    ReplayStrategy,
    ScriptedStrategy,
    SelectiveGeneralStrategy,
    SplitWorldStrategy,
    StaggeredGeneralStrategy,
    TwoFacedParticipantStrategy,
)
from repro.faults.timeline import (
    Coherent,
    Crash,
    FaultAction,
    FaultScript,
    Havoc,
    Heal,
    Isolate,
    Partition,
    Reconnect,
    Restart,
    SwapPolicy,
    SwapStrategy,
    build_timeline,
)
from repro.faults.transient import TransientFaultInjector

__all__ = [
    "ByzantineNode",
    "Coherent",
    "Crash",
    "CrashStrategy",
    "FaultAction",
    "FaultScript",
    "Havoc",
    "Heal",
    "Isolate",
    "Partition",
    "Reconnect",
    "Restart",
    "SwapPolicy",
    "SwapStrategy",
    "build_timeline",
    "EquivocatingGeneralStrategy",
    "MirrorParticipantStrategy",
    "NoiseStrategy",
    "ReplayStrategy",
    "ScriptedStrategy",
    "SelectiveGeneralStrategy",
    "SplitWorldStrategy",
    "StaggeredGeneralStrategy",
    "TransientFaultInjector",
    "TwoFacedParticipantStrategy",
]
