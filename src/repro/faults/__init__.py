"""Fault models: permanent Byzantine behaviour and transient corruption.

* :mod:`repro.faults.byzantine` -- Byzantine node strategies, from silent
  crashes to equivocating Generals and two-faced quorum-splitting
  participants.  A Byzantine node is *not* a modified protocol node: it is a
  raw :class:`~repro.node.base.Node` that can emit any protocol message to
  any subset at any time, which is exactly the adversary's power in the
  model (the network still authenticates its identity).
* :mod:`repro.faults.transient` -- the transient-fault injector: scrambles
  node protocol state, clock readings, and puts forged messages in flight,
  modelling the paper's "each node may be at an arbitrary state" starting
  condition.
"""

from repro.faults.byzantine import (
    ByzantineNode,
    CrashStrategy,
    EquivocatingGeneralStrategy,
    MirrorParticipantStrategy,
    NoiseStrategy,
    ReplayStrategy,
    ScriptedStrategy,
    SelectiveGeneralStrategy,
    SplitWorldStrategy,
    StaggeredGeneralStrategy,
    TwoFacedParticipantStrategy,
)
from repro.faults.transient import TransientFaultInjector

__all__ = [
    "ByzantineNode",
    "CrashStrategy",
    "EquivocatingGeneralStrategy",
    "MirrorParticipantStrategy",
    "NoiseStrategy",
    "ReplayStrategy",
    "ScriptedStrategy",
    "SelectiveGeneralStrategy",
    "SplitWorldStrategy",
    "StaggeredGeneralStrategy",
    "TransientFaultInjector",
    "TwoFacedParticipantStrategy",
]
