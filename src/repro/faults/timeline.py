"""Fault timelines: timed, composable adversary actions over a running scenario.

A :class:`FaultScript` is *data*: an ordered tuple of actions, each firing at
a fixed offset (in units of the timing constant ``d``) after installation.
Installing a script on a cluster schedules one simulator event per action, so
a scripted run stays a pure function of (scenario config, script, master
seed): bit-identical rows and trace digests at any worker count, across
repeated runs, and across interpreter restarts.

Action vocabulary
-----------------
======================  =====================================================
:class:`Partition`      cut an island off via a :class:`~repro.net.delivery.
                        LinkPartitionPolicy` wrapped around the live policy
:class:`Heal`           heal every active link partition
:class:`Isolate`        hard-disconnect nodes at the fabric
                        (:meth:`~repro.net.network.Network.partition`)
:class:`Reconnect`      undo :class:`Isolate`
                        (:meth:`~repro.net.network.Network.heal`)
:class:`SwapPolicy`     swap the delivery policy mid-run (delay storms,
                        bursty periods, back to uniform)
:class:`Crash`          node churn: stop nodes, optionally with protocol
                        state loss
:class:`Restart`        resume churned nodes (re-arms background cleanup)
:class:`SwapStrategy`   hot-swap a Byzantine node's strategy
:class:`Coherent`       mark the coherence transition in the trace
:class:`Havoc`          transient-fault injection at a chosen instant
======================  =====================================================

Scripts are JSON-able via :meth:`FaultScript.from_spec` (a list of dicts) so
suite configs can carry inline timelines, and common shapes are registered by
name in :data:`TIMELINE_BUILDERS` for the scenario-matrix runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence, Union

from repro.faults.transient import TransientFaultInjector, wipe_protocol_state
from repro.net.delivery import (
    BurstyDelay,
    DeliveryPolicy,
    FixedDelay,
    LinkPartitionPolicy,
    UniformDelay,
)

if TYPE_CHECKING:  # only for annotations: avoids a faults <-> harness cycle
    from repro.core.params import ProtocolParams
    from repro.harness.scenario import Cluster


# ---------------------------------------------------------------------------
# Named delivery-policy builders (shared by timelines and the suite runner)
# ---------------------------------------------------------------------------
def _policy_uniform(cluster: "Cluster") -> DeliveryPolicy:
    return UniformDelay(0.1 * cluster.params.delta, cluster.params.delta)


def _policy_fast(cluster: "Cluster") -> DeliveryPolicy:
    return UniformDelay(0.01 * cluster.params.delta, 0.1 * cluster.params.delta)


def _policy_delay_storm(cluster: "Cluster") -> DeliveryPolicy:
    # Every copy near the legal bound: the congested-but-correct worst case.
    return UniformDelay(0.9 * cluster.params.delta, cluster.params.delta)


def _policy_fixed_max(cluster: "Cluster") -> DeliveryPolicy:
    return FixedDelay(cluster.params.delta)


def _policy_bursty(cluster: "Cluster") -> DeliveryPolicy:
    p = cluster.params
    sim = cluster.sim
    return BurstyDelay(
        now_fn=lambda: sim.now,
        period=2.0 * p.d,
        fast_max=0.2 * p.delta,
        slow_min=0.8 * p.delta,
        slow_max=p.delta,
    )


POLICY_BUILDERS: dict[str, Callable[["Cluster"], DeliveryPolicy]] = {
    "uniform": _policy_uniform,
    "fast": _policy_fast,
    "delay_storm": _policy_delay_storm,
    "fixed_max": _policy_fixed_max,
    "bursty": _policy_bursty,
}

PolicySpec = Union[str, Callable[["Cluster"], DeliveryPolicy]]


def build_policy(spec: PolicySpec, cluster: "Cluster") -> DeliveryPolicy:
    """Resolve a policy name (or module-level factory) against a cluster."""
    if callable(spec):
        return spec(cluster)
    try:
        return POLICY_BUILDERS[spec](cluster)
    except KeyError:
        known = ", ".join(sorted(POLICY_BUILDERS))
        raise KeyError(f"unknown policy {spec!r} (known: {known})") from None


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FaultAction:
    """Base: something that happens to the cluster at ``at_d`` (units of d).

    ``index`` is the action's position in its script -- actions that need
    per-action randomness fold it into their seed-split key so two equal
    actions at the same offset still get independent streams.
    """

    at_d: float

    def apply(self, cluster: "Cluster", index: int = 0) -> None:
        raise NotImplementedError

    @property
    def kind(self) -> str:
        return type(self).__name__.lower()


@dataclass(frozen=True)
class Partition(FaultAction):
    """Cut ``island`` off from the rest by wrapping the live policy."""

    island: tuple[int, ...] = ()

    def apply(self, cluster: "Cluster", index: int = 0) -> None:
        cluster.net.set_policy(
            LinkPartitionPolicy(cluster.net.policy, frozenset(self.island))
        )


@dataclass(frozen=True)
class Heal(FaultAction):
    """Heal every link partition, unwrapping the wrapper stack.

    Unwrapping (rather than leaving healed wrappers to delegate forever)
    keeps per-message ``decide()`` flat under flapping partition/heal
    cycles; delivery behaviour is identical either way.
    """

    def apply(self, cluster: "Cluster", index: int = 0) -> None:
        policy = cluster.net.policy
        unwrapped = False
        while isinstance(policy, LinkPartitionPolicy):
            policy = policy.inner
            unwrapped = True
        if unwrapped:
            cluster.net.set_policy(policy)


@dataclass(frozen=True)
class Isolate(FaultAction):
    """Hard-disconnect nodes at the network fabric (total blackout)."""

    nodes: tuple[int, ...] = ()

    def apply(self, cluster: "Cluster", index: int = 0) -> None:
        for node_id in self.nodes:
            cluster.net.partition(node_id)


@dataclass(frozen=True)
class Reconnect(FaultAction):
    """Reconnect fabric-isolated nodes."""

    nodes: tuple[int, ...] = ()

    def apply(self, cluster: "Cluster", index: int = 0) -> None:
        for node_id in self.nodes:
            cluster.net.heal(node_id)


@dataclass(frozen=True)
class SwapPolicy(FaultAction):
    """Swap the delivery policy (by registered name or factory).

    Note: a wholesale swap replaces any active partition wrapper too --
    order partition/heal and policy swaps deliberately.
    """

    policy: PolicySpec = "uniform"

    def apply(self, cluster: "Cluster", index: int = 0) -> None:
        cluster.set_policy(build_policy(self.policy, cluster))


@dataclass(frozen=True)
class Crash(FaultAction):
    """Stop nodes.  Pending timers are wiped (a real crash loses them);
    ``state_loss=True`` additionally erases all protocol state, modelling a
    restart-from-empty-disk rather than a stun."""

    nodes: tuple[int, ...] = ()
    state_loss: bool = False

    def apply(self, cluster: "Cluster", index: int = 0) -> None:
        for pos, node_id in enumerate(self.nodes):
            with cluster.node_scope(node_id, pos):
                node = cluster.nodes[node_id]
                node.crash()
                node.cancel_timers()
                if self.state_loss:
                    wipe_protocol_state(node)


@dataclass(frozen=True)
class Restart(FaultAction):
    """Resume crashed nodes.

    A restarted protocol node gets its background cleanup tick re-armed
    (the periodic chain died with the crash) but is otherwise *non-faulty,
    not yet correct* in the paper's sense: whatever state survived is stale
    until the decay rules scrub it.  Restarting a node that is not crashed
    is a no-op, so a stray or duplicated restart entry cannot double the
    cleanup tick rate.

    ``scramble=True`` additionally overwrites the revived node's protocol
    state with plausible garbage via
    :meth:`~repro.faults.transient.TransientFaultInjector.corrupt_node` --
    the paper's arbitrary-state recovery model, and the exact scramble the
    live drivers apply to a respawned process.
    """

    nodes: tuple[int, ...] = ()
    scramble: bool = False
    value_pool: tuple = ("A", "B", "C")
    generals: tuple[int, ...] = (0,)

    def apply(self, cluster: "Cluster", index: int = 0) -> None:
        injector = None
        if self.scramble:
            injector = TransientFaultInjector(
                cluster.params,
                cluster.rng.split(f"timeline/restart/{index}@{self.at_d!r}"),
                value_pool=list(self.value_pool),
                generals=list(self.generals),
            )
        for pos, node_id in enumerate(self.nodes):
            with cluster.node_scope(node_id, pos):
                node = cluster.nodes[node_id]
                if not node.crashed:
                    continue
                node.resume()
                if injector is not None and hasattr(node, "instances"):
                    injector.corrupt_node(node)
                if hasattr(node, "cleanup_interval_d"):
                    node.every_local(
                        node.cleanup_interval_d * node.params.d,
                        node._cleanup_tick,
                        tag=f"cleanup:{node_id}",
                    )


@dataclass(frozen=True)
class SwapStrategy(FaultAction):
    """Hot-swap a Byzantine node's strategy mid-run."""

    node: int = 0
    strategy: object = None

    def __post_init__(self) -> None:
        if self.strategy is None or not hasattr(self.strategy, "install"):
            raise ValueError(
                f"swap_strategy for node {self.node} needs a Strategy instance, "
                f"got {self.strategy!r}"
            )

    def apply(self, cluster: "Cluster", index: int = 0) -> None:
        with cluster.node_scope(self.node, 0):
            target = cluster.nodes[self.node]
            if not hasattr(target, "strategy"):
                raise TypeError(
                    f"node {self.node} is not Byzantine; cannot swap strategy"
                )
            target.strategy = self.strategy
            self.strategy.install(target)  # type: ignore[union-attr]


@dataclass(frozen=True)
class Coherent(FaultAction):
    """Record the coherence transition (assumption bounds hold from here)."""

    def apply(self, cluster: "Cluster", index: int = 0) -> None:
        cluster.mark_coherent()


@dataclass(frozen=True)
class Havoc(FaultAction):
    """Transient-fault injection at a chosen instant.

    Randomness derives from the cluster's master seed, split on the
    action's script position and firing offset, so scripted havoc is
    replayable like everything else and two havoc actions never share a
    stream.
    """

    garbage: int = 200
    value_pool: tuple = ("A", "B", "C")
    generals: tuple[int, ...] = (0,)

    def apply(self, cluster: "Cluster", index: int = 0) -> None:
        injector = TransientFaultInjector(
            cluster.params,
            cluster.rng.split(f"timeline/havoc/{index}@{self.at_d!r}"),
            value_pool=list(self.value_pool),
            generals=list(self.generals),
        )
        injector.havoc(cluster.correct_nodes(), cluster.net, self.garbage)


# ---------------------------------------------------------------------------
# The script
# ---------------------------------------------------------------------------
_ACTION_KINDS: dict[str, type] = {
    "partition": Partition,
    "heal": Heal,
    "isolate": Isolate,
    "reconnect": Reconnect,
    "policy": SwapPolicy,
    "crash": Crash,
    "restart": Restart,
    "swap_strategy": SwapStrategy,
    "coherent": Coherent,
    "havoc": Havoc,
}

# JSON spec fields that arrive as lists but are stored as tuples.
_TUPLE_FIELDS = ("island", "nodes", "value_pool", "generals")


@dataclass(frozen=True)
class FaultScript:
    """An ordered, deterministic schedule of fault actions.

    ``install`` schedules every action relative to the current simulation
    time (or an explicit ``start_real``); equal-time actions fire in script
    order (the simulator breaks time ties by scheduling order).
    """

    actions: tuple[FaultAction, ...] = ()

    @classmethod
    def from_spec(cls, spec: Sequence[dict]) -> "FaultScript":
        """Build a script from JSON-able dicts: ``{"at_d": 1.0, "do": ...}``."""
        actions = []
        for entry in spec:
            entry = dict(entry)
            kind = entry.pop("do")
            try:
                action_cls = _ACTION_KINDS[kind]
            except KeyError:
                known = ", ".join(sorted(_ACTION_KINDS))
                raise KeyError(f"unknown action {kind!r} (known: {known})") from None
            for key in _TUPLE_FIELDS:
                if key in entry:
                    entry[key] = tuple(entry[key])
            actions.append(action_cls(**entry))
        return cls(tuple(actions))

    def install(self, cluster: "Cluster", start_real: "float | None" = None) -> None:
        """Schedule all actions on the cluster's simulator.

        A sharded driving facade has no local simulator; it exposes
        ``install_script``, which validates the script and replays this
        method inside every shard worker.
        """
        installer = getattr(cluster, "install_script", None)
        if installer is not None:
            installer(self, start_real)
            return
        base = cluster.sim.now if start_real is None else start_real
        d = cluster.params.d
        ordered = sorted(enumerate(self.actions), key=lambda pair: pair[1].at_d)
        for index, action in ordered:
            cluster.sim.schedule_at(
                base + action.at_d * d,
                _Firing(cluster, action, index),
                tag=f"timeline:{action.kind}",
            )

    def churned_nodes(self) -> frozenset[int]:
        """Ids of nodes this script crashes at some point.

        A churned node stops being *correct* in the paper's sense for the
        rest of the run (it only regains correctness ``Delta_node`` after a
        restart), so property checkers should quantify over the others.
        """
        churned: set[int] = set()
        for action in self.actions:
            if isinstance(action, Crash):
                churned.update(action.nodes)
        return frozenset(churned)

    def __len__(self) -> int:
        return len(self.actions)


class _Firing:
    """One scheduled action application (a named callable for picklability
    of the surrounding script and clearer simulator introspection)."""

    __slots__ = ("cluster", "action", "index")

    def __init__(self, cluster: "Cluster", action: FaultAction, index: int) -> None:
        self.cluster = cluster
        self.action = action
        self.index = index

    def __call__(self) -> None:
        cluster = self.cluster
        cluster.tracer.record(
            cluster.sim.now, None, "timeline", action=self.action.kind
        )
        self.action.apply(cluster, self.index)


# ---------------------------------------------------------------------------
# Named timelines (parameterized by the scenario's ProtocolParams)
# ---------------------------------------------------------------------------
def _half_island(params: "ProtocolParams") -> tuple[int, ...]:
    # A cut with no strong quorum (n - f) on either side: the General's half.
    return tuple(range(params.n // 2))


def _tl_none(params: "ProtocolParams") -> FaultScript:
    return FaultScript(())


def _tl_partition_heal(params: "ProtocolParams") -> FaultScript:
    # Mid-protocol partition that heals inside the decision window: quorum
    # collection stalls during the cut and completes after the heal via the
    # protocol's re-sends.  Agreement must survive; latency may grow.
    return FaultScript(
        (
            Partition(at_d=1.0, island=_half_island(params)),
            Heal(at_d=3.0),
        )
    )


def _tl_partition_late_heal(params: "ProtocolParams") -> FaultScript:
    # Heals only after the paper's 4d fast-path window: decisions (or clean
    # aborts) must still never split the correct nodes.
    return FaultScript(
        (
            Partition(at_d=1.0, island=_half_island(params)),
            Heal(at_d=6.0),
        )
    )


def _tl_delay_storm(params: "ProtocolParams") -> FaultScript:
    return FaultScript(
        (
            SwapPolicy(at_d=0.5, policy="delay_storm"),
            SwapPolicy(at_d=4.5, policy="uniform"),
        )
    )


def _tl_bursty(params: "ProtocolParams") -> FaultScript:
    return FaultScript((SwapPolicy(at_d=0.0, policy="bursty"),))


def _tl_churn(params: "ProtocolParams") -> FaultScript:
    # Crash the last node with full state loss mid-run, restart it later:
    # the restarted node is non-faulty-but-not-yet-correct and must not
    # break agreement among the others.
    victim = (params.n - 1,)
    return FaultScript(
        (
            Crash(at_d=1.0, nodes=victim, state_loss=True),
            Restart(at_d=5.0, nodes=victim),
        )
    )


def _tl_partition_storm(params: "ProtocolParams") -> FaultScript:
    # Compound adversary: a healing partition followed by a delay storm.
    return FaultScript(
        (
            Partition(at_d=1.0, island=_half_island(params)),
            Heal(at_d=3.0),
            SwapPolicy(at_d=3.0, policy="delay_storm"),
            SwapPolicy(at_d=7.0, policy="uniform"),
        )
    )


TIMELINE_BUILDERS: dict[str, Callable[["ProtocolParams"], FaultScript]] = {
    "none": _tl_none,
    "partition_heal": _tl_partition_heal,
    "partition_late_heal": _tl_partition_late_heal,
    "delay_storm": _tl_delay_storm,
    "bursty": _tl_bursty,
    "churn": _tl_churn,
    "partition_storm": _tl_partition_storm,
}

TimelineSpec = Union[str, FaultScript, Sequence[dict]]


def build_timeline(spec: TimelineSpec, params: "ProtocolParams") -> FaultScript:
    """Resolve a timeline name / inline dict spec / ready script."""
    if isinstance(spec, FaultScript):
        return spec
    if isinstance(spec, str):
        try:
            return TIMELINE_BUILDERS[spec](params)
        except KeyError:
            known = ", ".join(sorted(TIMELINE_BUILDERS))
            raise KeyError(f"unknown timeline {spec!r} (known: {known})") from None
    return FaultScript.from_spec(spec)


__all__ = [
    "Coherent",
    "Crash",
    "FaultAction",
    "FaultScript",
    "Havoc",
    "Heal",
    "Isolate",
    "POLICY_BUILDERS",
    "Partition",
    "Reconnect",
    "Restart",
    "SwapPolicy",
    "SwapStrategy",
    "TIMELINE_BUILDERS",
    "build_policy",
    "build_timeline",
]
