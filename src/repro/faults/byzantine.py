"""Byzantine node strategies.

A :class:`ByzantineNode` deviates arbitrarily from the protocol: the
strategy object decides what to send, to whom, and when.  The network still
authenticates the sender identity (Definition 2), so a Byzantine node cannot
impersonate others -- but it can equivocate (different messages to different
receivers), stay silent, flood garbage, or time its messages adversarially.

The strategies here are the attack repertoire the experiments sweep:

=======================================  =====================================
Strategy                                 Targets
=======================================  =====================================
:class:`CrashStrategy`                   liveness with silent faults (E4)
:class:`NoiseStrategy`                   robustness to garbage traffic
:class:`EquivocatingGeneralStrategy`     Agreement under a two-faced General,
                                         incl. split support/approve waves (E2)
:class:`StaggeredGeneralStrategy`        the "sends its values at completely
                                         different times" attack (Section 4)
:class:`SelectiveGeneralStrategy`        partial initiation -- some correct
                                         nodes never see the General (E2)
:class:`TwoFacedParticipantStrategy`     quorum-splitting by non-General
                                         Byzantine participants
:class:`MirrorParticipantStrategy`       Byzantine nodes that *help* whatever
                                         wave exists (worst case for
                                         Uniqueness windows)
:class:`ScriptedStrategy`                exact message schedules for
                                         lemma-edge unit tests
=======================================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Protocol, Sequence

from repro.core.messages import (
    ApproveMsg,
    InitiatorMsg,
    MBEchoMsg,
    MBEchoPrimeMsg,
    MBInitMsg,
    MBInitPrimeMsg,
    ReadyMsg,
    SupportMsg,
    Value,
)
from repro.core.params import ProtocolParams
from repro.net.network import Envelope
from repro.node.base import Node
from repro.sim.rand import RandomSource


class Strategy(Protocol):
    """Behaviour plugged into a :class:`ByzantineNode`."""

    def install(self, node: "ByzantineNode") -> None:
        """Schedule the strategy's activity on the node."""
        ...

    def on_message(self, node: "ByzantineNode", envelope: Envelope) -> None:
        """React to a delivered message (may be a no-op)."""
        ...


class ByzantineNode(Node):
    """A node whose behaviour is entirely strategy-driven."""

    def __init__(
        self,
        node_id: int,
        ctx,  # a ProtocolHost, or a sim NodeContext (wrapped by Node)
        params: ProtocolParams,
        strategy: Strategy,
    ) -> None:
        super().__init__(node_id, ctx)
        self.params = params
        self.strategy = strategy
        strategy.install(self)

    def on_message(self, envelope: Envelope) -> None:
        self.strategy.on_message(self, envelope)

    # Convenience senders -------------------------------------------------
    def send_to_all(self, receivers: Iterable[int], payload: object) -> None:
        """Send the same payload to a chosen subset (equivocation tool)."""
        for receiver in receivers:
            self.send(receiver, payload)


# ---------------------------------------------------------------------------
# Baseline behaviours
# ---------------------------------------------------------------------------
class CrashStrategy:
    """Sends nothing, ever (a silent/crashed Byzantine node)."""

    def install(self, node: ByzantineNode) -> None:
        node.trace("byz_crash_installed")

    def on_message(self, node: ByzantineNode, envelope: Envelope) -> None:
        pass


class NoiseStrategy:
    """Floods random protocol messages at a fixed local-time interval."""

    def __init__(
        self,
        rng: RandomSource,
        value_pool: Sequence[Value],
        generals: Sequence[int],
        interval_local: float,
    ) -> None:
        self.rng = rng
        self.value_pool = list(value_pool)
        self.generals = list(generals)
        self.interval_local = interval_local

    def install(self, node: ByzantineNode) -> None:
        node.every_local(self.interval_local, lambda: self._spam(node), tag="byz_noise")

    def _spam(self, node: ByzantineNode) -> None:
        general = self.rng.choice(self.generals)
        value = self.rng.choice(self.value_pool)
        origin = self.rng.randint(0, node.params.n - 1)
        k = self.rng.randint(1, node.params.f + 1)
        factories = [
            lambda: SupportMsg(general, value),
            lambda: ApproveMsg(general, value),
            lambda: ReadyMsg(general, value),
            lambda: InitiatorMsg(node.node_id, value),
            lambda: MBInitMsg(general, node.node_id, value, k),
            lambda: MBEchoMsg(general, origin, value, k),
            lambda: MBInitPrimeMsg(general, origin, value, k),
            lambda: MBEchoPrimeMsg(general, origin, value, k),
        ]
        payload = self.rng.choice(factories)()
        receivers = self.rng.sample(
            node.net.node_ids, self.rng.randint(1, len(node.net.node_ids))
        )
        node.send_to_all(receivers, payload)

    def on_message(self, node: ByzantineNode, envelope: Envelope) -> None:
        pass


# ---------------------------------------------------------------------------
# Byzantine Generals
# ---------------------------------------------------------------------------
@dataclass
class EquivocatingGeneralStrategy:
    """Sends value ``value_a`` to one camp and ``value_b`` to the other,
    then feeds each camp supporting traffic for *its* value.

    This is the canonical Agreement attack: the General tries to assemble
    two disjoint support waves.  With ``n > 3f`` the strong quorum
    (``n - f``) makes two simultaneous approve waves impossible -- the
    attack must fail, and E2 verifies that it does on every seed.
    """

    value_a: Value
    value_b: Value
    camp_a: tuple[int, ...]
    camp_b: tuple[int, ...]
    start_delay_local: float = 0.0

    def install(self, node: ByzantineNode) -> None:
        def attack() -> None:
            node.trace("byz_equivocate", a=self.value_a, b=self.value_b)
            node.send_to_all(self.camp_a, InitiatorMsg(node.node_id, self.value_a))
            node.send_to_all(self.camp_b, InitiatorMsg(node.node_id, self.value_b))
            # Keep feeding both camps so neither wave dies for lack of the
            # Byzantine node's own quorum contribution.
            d = node.params.d
            for i in range(1, 6):
                node.after_local(
                    i * d,
                    lambda: (
                        node.send_to_all(self.camp_a, SupportMsg(node.node_id, self.value_a)),
                        node.send_to_all(self.camp_b, SupportMsg(node.node_id, self.value_b)),
                        node.send_to_all(self.camp_a, ApproveMsg(node.node_id, self.value_a)),
                        node.send_to_all(self.camp_b, ApproveMsg(node.node_id, self.value_b)),
                        node.send_to_all(self.camp_a, ReadyMsg(node.node_id, self.value_a)),
                        node.send_to_all(self.camp_b, ReadyMsg(node.node_id, self.value_b)),
                    ),
                    tag="byz_feed",
                )

        node.after_local(self.start_delay_local, attack, tag="byz_equiv_start")

    def on_message(self, node: ByzantineNode, envelope: Envelope) -> None:
        pass


@dataclass
class StaggeredGeneralStrategy:
    """Sends the *same* value but at wildly different times per receiver.

    Exercises the path the paper singles out: "a faulty General has more
    power in trying to fool the correct nodes by sending its values at
    completely different times to whichever nodes it chooses."  Correct
    outcomes here are all-decide-same or all-abort -- never a split.
    """

    value: Value
    spread_local: float = 0.0
    receivers: Optional[tuple[int, ...]] = None

    def install(self, node: ByzantineNode) -> None:
        def start() -> None:
            # Deferred: at install time the cluster may still be under
            # construction and net.node_ids incomplete.
            receivers = (
                list(self.receivers)
                if self.receivers is not None
                else node.net.node_ids
            )
            gap = self.spread_local / max(1, len(receivers) - 1) if receivers else 0.0
            for idx, receiver in enumerate(receivers):
                node.after_local(
                    idx * gap,
                    lambda r=receiver: node.send(
                        r, InitiatorMsg(node.node_id, self.value)
                    ),
                    tag="byz_stagger",
                )

        node.after_local(0.0, start, tag="byz_stagger_start")

    def on_message(self, node: ByzantineNode, envelope: Envelope) -> None:
        pass


@dataclass
class SelectiveGeneralStrategy:
    """Sends the initiation to only a subset of nodes, then goes silent.

    Some correct nodes may return BOTTOM while others never notice the
    initiation -- both legal; what must never happen is two correct nodes
    *deciding* differently, and if any correct node decides, all must.
    """

    value: Value
    receivers: tuple[int, ...]

    def install(self, node: ByzantineNode) -> None:
        def attack() -> None:
            for receiver in self.receivers:
                node.send(receiver, InitiatorMsg(node.node_id, self.value))

        node.after_local(0.0, attack, tag="byz_selective")

    def on_message(self, node: ByzantineNode, envelope: Envelope) -> None:
        pass


# ---------------------------------------------------------------------------
# Byzantine participants (non-General)
# ---------------------------------------------------------------------------
@dataclass
class TwoFacedParticipantStrategy:
    """Relays each wave it sees -- but only to half the nodes.

    For every support/approve/ready/echo the node receives, it forwards its
    own copy to ``camp`` only, trying to lift one camp over quorum
    thresholds while starving the other.
    """

    camp: tuple[int, ...]

    def install(self, node: ByzantineNode) -> None:
        node.trace("byz_twofaced_installed")

    def on_message(self, node: ByzantineNode, envelope: Envelope) -> None:
        if envelope.sender == node.node_id:
            return
        msg = envelope.payload
        mirrored: Optional[object] = None
        if isinstance(msg, SupportMsg):
            mirrored = SupportMsg(msg.general, msg.value)
        elif isinstance(msg, ApproveMsg):
            mirrored = ApproveMsg(msg.general, msg.value)
        elif isinstance(msg, ReadyMsg):
            mirrored = ReadyMsg(msg.general, msg.value)
        elif isinstance(msg, MBInitMsg):
            mirrored = MBEchoMsg(msg.general, msg.origin, msg.value, msg.k)
        elif isinstance(msg, MBEchoMsg):
            mirrored = MBEchoMsg(msg.general, msg.origin, msg.value, msg.k)
        elif isinstance(msg, MBInitPrimeMsg):
            mirrored = MBInitPrimeMsg(msg.general, msg.origin, msg.value, msg.k)
        elif isinstance(msg, MBEchoPrimeMsg):
            mirrored = MBEchoPrimeMsg(msg.general, msg.origin, msg.value, msg.k)
        if mirrored is not None:
            node.send_to_all(self.camp, mirrored)


class MirrorParticipantStrategy:
    """Echoes support for *every* wave to *everyone*, immediately.

    The most helpful-looking Byzantine node: it amplifies whatever is in the
    air, which is the worst case for the Uniqueness windows (IA-4) because it
    keeps stale waves alive as long as legally possible.
    """

    def install(self, node: ByzantineNode) -> None:
        node.trace("byz_mirror_installed")

    def on_message(self, node: ByzantineNode, envelope: Envelope) -> None:
        if envelope.sender == node.node_id:
            # Reacting to one's own broadcasts only floods the adversary's
            # own outbox (and the simulation); a rational adversary skips it.
            return
        msg = envelope.payload
        if isinstance(msg, InitiatorMsg):
            node.broadcast(SupportMsg(msg.general, msg.value))
        elif isinstance(msg, SupportMsg):
            node.broadcast(SupportMsg(msg.general, msg.value))
            node.broadcast(ApproveMsg(msg.general, msg.value))
        elif isinstance(msg, ApproveMsg):
            node.broadcast(ApproveMsg(msg.general, msg.value))
            node.broadcast(ReadyMsg(msg.general, msg.value))
        elif isinstance(msg, ReadyMsg):
            node.broadcast(ReadyMsg(msg.general, msg.value))


@dataclass
class SplitWorldStrategy:
    """A coordinated split-world participant: full wave A to camp A, full
    wave B to camp B, on a repeating schedule.

    One Byzantine General running :class:`EquivocatingGeneralStrategy` plus
    ``f' - 1`` participants running this strategy is the textbook partition
    attack.  With ``n > 3f'`` it provably cannot split the correct nodes
    (E2/E6 within-bound arms); with ``n <= 3f'`` it splits them outright
    (E6 beyond-bound arm), which is what makes the resilience bound tight.
    """

    general: int
    value_a: Value
    value_b: Value
    camp_a: tuple[int, ...]
    camp_b: tuple[int, ...]
    rounds: int = 8

    def install(self, node: ByzantineNode) -> None:
        d = node.params.d
        for i in range(self.rounds):
            node.after_local(
                (i + 0.5) * d,
                lambda: self._wave(node),
                tag="byz_splitworld",
            )

    def _wave(self, node: ByzantineNode) -> None:
        for camp, value in ((self.camp_a, self.value_a), (self.camp_b, self.value_b)):
            node.send_to_all(camp, SupportMsg(self.general, value))
            node.send_to_all(camp, ApproveMsg(self.general, value))
            node.send_to_all(camp, ReadyMsg(self.general, value))

    def on_message(self, node: ByzantineNode, envelope: Envelope) -> None:
        pass


@dataclass
class ReplayStrategy:
    """Records every protocol message it receives, then replays all of them.

    Transient faults aside, replay is the adversary's main tool against the
    *Uniqueness* and *Separation* properties (IA-4, Timeliness-4): stale
    waves must never re-trigger acceptance.  The decay rules (message age
    ``Delta_rmv``, ``last(G, m)`` horizons) are exactly what defeats this --
    the tests assert no second decision materializes.
    """

    delay_local: float
    bursts: int = 3
    burst_gap_local: float = 0.0

    def __post_init__(self) -> None:
        self._recorded: list[object] = []

    def install(self, node: ByzantineNode) -> None:
        gap = self.burst_gap_local or 2.0 * node.params.d
        for burst in range(self.bursts):
            node.after_local(
                self.delay_local + burst * gap,
                lambda: self._replay(node),
                tag="byz_replay",
            )

    def _replay(self, node: ByzantineNode) -> None:
        node.trace("byz_replay_burst", count=len(self._recorded))
        for payload in self._recorded:
            node.broadcast(payload)

    def on_message(self, node: ByzantineNode, envelope: Envelope) -> None:
        if envelope.sender == node.node_id:
            return
        self._recorded.append(envelope.payload)


@dataclass
class ScriptedStrategy:
    """Plays back an exact schedule of (local_delay, receivers, payload).

    The unit tests use this to place adversarial messages exactly at window
    boundaries (e.g. a support arriving 4d + epsilon late).
    """

    script: tuple[tuple[float, tuple[int, ...], object], ...]

    def install(self, node: ByzantineNode) -> None:
        for delay, receivers, payload in self.script:
            node.after_local(
                delay,
                lambda r=receivers, p=payload: node.send_to_all(r, p),
                tag="byz_script",
            )

    def on_message(self, node: ByzantineNode, envelope: Envelope) -> None:
        pass


__all__ = [
    "ByzantineNode",
    "CrashStrategy",
    "EquivocatingGeneralStrategy",
    "MirrorParticipantStrategy",
    "NoiseStrategy",
    "ReplayStrategy",
    "ScriptedStrategy",
    "SelectiveGeneralStrategy",
    "SplitWorldStrategy",
    "StaggeredGeneralStrategy",
    "Strategy",
    "TwoFacedParticipantStrategy",
]
