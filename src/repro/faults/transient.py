"""Transient-fault injection.

Models the paper's pre-coherence chaos: "each node may be in an arbitrary
state ... any synchronization among the nodes might be lost".  Three levers,
used together by the stabilization experiments (E3):

1. **State corruption** -- every protocol variable on every chosen node is
   overwritten with plausible garbage (random anchors, fabricated quorum
   evidence, stale ``last(G, m)`` stamps, armed ``ready`` flags, ...).
2. **Clock corruption** -- absolute local readings are scrambled (rates are
   hardware and survive).
3. **In-flight garbage** -- forged protocol messages with arbitrary claimed
   senders are placed on the wire, modelling both the faulty network period
   and messages "sent" by nodes while they were faulty.

Targeted (adversarial) corruptions are layered on top of the random ones:
they construct exactly the near-miss states the paper's Claims 1-5 and
Lemma 2 guard against, e.g. a forged almost-complete ``ready`` quorum.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.agreement import ProtocolNode
from repro.core.messages import (
    ApproveMsg,
    InitiatorMsg,
    MBEchoMsg,
    MBEchoPrimeMsg,
    MBInitMsg,
    MBInitPrimeMsg,
    ReadyMsg,
    SupportMsg,
    Value,
)
from repro.core.params import ProtocolParams
from repro.net.network import Network
from repro.sim.rand import RandomSource


def wipe_protocol_state(node: ProtocolNode) -> None:
    """Erase every protocol variable: the restart-from-empty-disk model.

    Shared by the sim timeline's ``Crash(state_loss=True)`` and the live
    fault drivers (a SIGKILLed process loses its heap for real; an
    in-process asyncio "crash" must lose it explicitly), so both paths
    agree on what "full state loss" means.
    """
    if not hasattr(node, "instances"):
        return
    node.instances.clear()
    node._last_initiation = None
    node._last_initiation_by_value.clear()
    node._failed_initiation_at = None


class TransientFaultInjector:
    """Applies transient chaos to a set of protocol nodes and the network."""

    def __init__(
        self,
        params: ProtocolParams,
        rng: RandomSource,
        value_pool: Sequence[Value],
        generals: Sequence[int],
    ) -> None:
        self.params = params
        self.rng = rng
        self.value_pool = list(value_pool)
        self.generals = list(generals)

    # ------------------------------------------------------------------
    # Node state corruption
    # ------------------------------------------------------------------
    def corrupt_node(self, node: ProtocolNode) -> None:
        """Scramble all protocol state and the clock reading of one node."""
        # Make sure instances exist for every General we may corrupt against.
        for general in self.generals:
            node.instance(general)
        node.corrupt(self.rng, self.value_pool)
        if node.clock is not None:
            # Wall-clock backends own no corruptible clock object; state
            # corruption alone is the arbitrary-state model there.
            node.clock.corrupt_offset(
                self.rng.uniform(-self.params.delta_stb, self.params.delta_stb)
            )

    def corrupt_nodes(self, nodes: Sequence[ProtocolNode]) -> None:
        """Corrupt many nodes."""
        for node in nodes:
            self.corrupt_node(node)

    # ------------------------------------------------------------------
    # Targeted near-miss states (the hazards the lemmas guard against)
    # ------------------------------------------------------------------
    def plant_fake_ready_wave(self, node: ProtocolNode, general: int, value: Value) -> None:
        """Arm ``ready`` and plant an almost-complete ready quorum.

        One more forged ready message and the node would run Line N4 -- the
        exact state Claim 4 shows cannot cascade once the system is stable.
        """
        inst = node.instance(general)
        now = node.local_now()
        inst.ia._ready_flag(value).set(now)
        needed = self.params.strong_quorum - 1
        for sender in range(needed):
            inst.ia.log.corrupt_insert(
                (inst.ia.READY, general, value), sender, now
            )
        node.trace("planted_fake_ready", general=general, value=value)

    def plant_stale_anchor(self, node: ProtocolNode, general: int, value: Value) -> None:
        """Give the node a garbage anchor mid-"agreement" that never was."""
        inst = node.instance(general)
        now = node.local_now()
        inst.tau_g = now - self.rng.uniform(0, self.params.delta_agr)
        inst.accepted_value = value
        inst.mb.set_anchor(inst.tau_g)
        node.trace("planted_stale_anchor", general=general, value=value)

    def plant_poisoned_last_gm(self, node: ProtocolNode, general: int, value: Value) -> None:
        """Plant a future ``last(G, m)`` stamp that would block Block K.

        Cleanup must clear it (future stamps are "clearly wrong") or the node
        could refuse a correct General forever -- a liveness hazard.
        """
        inst = node.instance(general)
        now = node.local_now()
        inst.ia._last_gm(value).assign(now, now + self.params.delta_stb)
        node.trace("planted_poisoned_last_gm", general=general, value=value)

    # ------------------------------------------------------------------
    # In-flight garbage
    # ------------------------------------------------------------------
    def inject_garbage_traffic(
        self, net: Network, count: int, max_delay: float
    ) -> None:
        """Put ``count`` forged messages on the wire with random delays."""
        node_ids = net.node_ids
        for _ in range(count):
            general = self.rng.choice(self.generals)
            value = self.rng.choice(self.value_pool)
            origin = self.rng.choice(node_ids)
            k = self.rng.randint(1, self.params.f + 1)
            factories = [
                lambda: InitiatorMsg(general, value),
                lambda: SupportMsg(general, value),
                lambda: ApproveMsg(general, value),
                lambda: ReadyMsg(general, value),
                lambda: MBInitMsg(general, origin, value, k),
                lambda: MBEchoMsg(general, origin, value, k),
                lambda: MBInitPrimeMsg(general, origin, value, k),
                lambda: MBEchoPrimeMsg(general, origin, value, k),
            ]
            payload = self.rng.choice(factories)()
            net.inject_spurious(
                claimed_sender=self.rng.choice(node_ids),
                receiver=self.rng.choice(node_ids),
                payload=payload,
                delay=self.rng.uniform(0.0, max_delay),
            )

    # ------------------------------------------------------------------
    # Full chaos preset
    # ------------------------------------------------------------------
    def havoc(
        self,
        nodes: Sequence[ProtocolNode],
        net: Network,
        garbage_messages: int = 200,
    ) -> None:
        """Random corruption of every node plus targeted near-misses."""
        self.corrupt_nodes(nodes)
        for node in nodes:
            general = self.rng.choice(self.generals)
            value = self.rng.choice(self.value_pool)
            choice = self.rng.randint(0, 3)
            if choice == 0:
                self.plant_fake_ready_wave(node, general, value)
            elif choice == 1:
                self.plant_stale_anchor(node, general, value)
            elif choice == 2:
                self.plant_poisoned_last_gm(node, general, value)
            # choice == 3: random corruption only.
        self.inject_garbage_traffic(
            net, garbage_messages, max_delay=2.0 * self.params.d
        )


__all__ = ["TransientFaultInjector", "wipe_protocol_state"]
