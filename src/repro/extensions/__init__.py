"""Extensions the paper points at but does not fully develop.

* :mod:`repro.extensions.pulse_sync` -- synchronized pulses built *atop*
  ss-Byz-Agree.  The paper (Section 1) states that "synchronized pulses can
  actually be produced more efficiently atop the protocol in the current
  paper" (citing the then-unpublished [6]); this module reconstructs that
  idea: recurrent agreements whose decisions fire pulses, inheriting the
  protocol's 3d decision spread as the pulse skew bound.
* :mod:`repro.extensions.concurrent` -- concurrent agreement invocations by
  one General, differentiated by an index (the paper's footnote 9: "One can
  expand the protocol to a number of concurrent invocations by using an
  index").
* :mod:`repro.extensions.state_machine` -- a replicated state machine built
  on the indexed invocations: the classic downstream application the
  Byzantine Generals problem motivates.
"""

from repro.extensions.concurrent import ConcurrentGeneral, indexed_general
from repro.extensions.pulse_sync import PulseConfig, PulseNode, PulseSyncCluster
from repro.extensions.state_machine import Replica, ReplicatedStateMachine

__all__ = [
    "ConcurrentGeneral",
    "PulseConfig",
    "PulseNode",
    "PulseSyncCluster",
    "Replica",
    "ReplicatedStateMachine",
    "indexed_general",
]
