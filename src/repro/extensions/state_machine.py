"""Replicated state machine on top of ss-Byz-Agree.

The downstream-user API the protocol's introduction motivates: a primary
disseminates an ordered stream of commands; replicas apply exactly the same
sequence despite Byzantine members and (after transient faults) arbitrary
starting states.

Ordering: commands are sequenced by the *index* of the concurrent-invocation
extension (paper footnote 9), so the primary needs no ``Delta_0`` pacing
between commands; replicas buffer out-of-order decisions and apply in index
order.  Gaps heal automatically when the missing index decides (the paper's
Agreement property guarantees it eventually does at every correct node if it
does anywhere).

This is an *extension*, not part of the paper: it demonstrates that the
paper's primitive composes into the classic SMR abstraction with no extra
machinery beyond indexing.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.agreement import Decision, ProtocolNode
from repro.core.messages import Value
from repro.extensions.concurrent import ConcurrentGeneral

ApplyCallback = Callable[[int, Value], None]


class DecisionTap:
    """A chainable ``node.on_decision`` observer with clean teardown.

    Observers stack: each tap remembers the callback that was installed
    before it and forwards every decision to it, so several independent
    observers (service metrics, a replica, a test probe) compose on one
    node.  :meth:`detach` splices the tap back *out* of the chain wherever
    it sits -- head or middle -- so observers can tear down in any order
    without orphaning each other.

    Subclasses implement :meth:`_on_decision`.
    """

    def __init__(self, node: ProtocolNode) -> None:
        self.node = node
        self._previous = node.on_decision
        self._detached = False
        node.on_decision = self._dispatch

    def _dispatch(self, decision: Decision) -> None:
        if self._previous is not None:
            self._previous(decision)
        if not self._detached:
            self._on_decision(decision)

    def _on_decision(self, decision: Decision) -> None:
        raise NotImplementedError

    def detach(self) -> None:
        """Remove this tap from the node's decision chain.

        Restores ``node.on_decision`` to the previous callback when this
        tap is at the head; when a later tap was stacked on top, the later
        tap's back-pointer is re-spliced past this one instead.  If a
        foreign (non-tap) callback was interposed the tap cannot be
        spliced out structurally; it stays in the chain as an inert
        pass-through.
        """
        if self._detached:
            return
        self._detached = True
        if self.node.on_decision == self._dispatch:
            self.node.on_decision = self._previous
            return
        cursor = self.node.on_decision
        while cursor is not None:
            owner = getattr(cursor, "__self__", None)
            if not isinstance(owner, DecisionTap):
                return
            if owner._previous == self._dispatch:
                owner._previous = self._previous
                return
            cursor = owner._previous


class Replica(DecisionTap):
    """Applies decided commands in index order."""

    def __init__(
        self,
        node: ProtocolNode,
        primary: int,
        on_apply: Optional[ApplyCallback] = None,
    ) -> None:
        self.primary = primary
        self.on_apply = on_apply
        self.applied: list[tuple[int, Value]] = []
        self._pending: dict[int, Value] = {}
        self._next_index = 0
        super().__init__(node)

    # ------------------------------------------------------------------
    # Decision intake
    # ------------------------------------------------------------------
    def _on_decision(self, decision: Decision) -> None:
        general = decision.general
        if not (
            decision.decided
            and isinstance(general, tuple)
            and general[0] == self.primary
        ):
            return
        index = general[1]
        if index < self._next_index or index in self._pending:
            return  # duplicate (e.g. a re-decision after recovery)
        self._pending[index] = decision.value
        self._drain()

    def _drain(self) -> None:
        while self._next_index in self._pending:
            value = self._pending.pop(self._next_index)
            self.applied.append((self._next_index, value))
            if self.on_apply is not None:
                self.on_apply(self._next_index, value)
            self._next_index += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def log(self) -> list[Value]:
        """Applied command values, in order."""
        return [value for _index, value in self.applied]

    @property
    def gap(self) -> Optional[int]:
        """Lowest index decided-but-not-applied is waiting on, if any."""
        if not self._pending:
            return None
        return self._next_index


class ReplicatedStateMachine:
    """Primary-side driver plus replica wiring for a whole cluster."""

    def __init__(self, cluster, primary: int = 0) -> None:
        self.cluster = cluster
        self.primary = primary
        self._general = ConcurrentGeneral(cluster.protocol_node(primary))
        self.replicas: dict[int, Replica] = {
            node_id: Replica(cluster.protocol_node(node_id), primary)
            for node_id in cluster.correct_ids
        }

    def submit(self, command: Value) -> int:
        """Submit one command from the primary; returns its log index."""
        return self._general.propose(command)

    def submit_batch(self, commands: list[Value]) -> list[int]:
        """Submit several commands back-to-back (no pacing needed)."""
        return [self.submit(command) for command in commands]

    # ------------------------------------------------------------------
    # Verification helpers
    # ------------------------------------------------------------------
    def logs(self) -> dict[int, list[Value]]:
        """Per-replica applied logs."""
        return {node_id: replica.log for node_id, replica in self.replicas.items()}

    def logs_consistent(self) -> bool:
        """True iff every replica's log is a prefix of the longest log."""
        logs = list(self.logs().values())
        longest = max(logs, key=len)
        return all(log == longest[: len(log)] for log in logs)


__all__ = ["ApplyCallback", "DecisionTap", "Replica", "ReplicatedStateMachine"]
