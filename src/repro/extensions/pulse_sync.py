"""Synchronized pulses atop ss-Byz-Agree.

The paper's Section 1: "we show in [6] that synchronized pulses can actually
be produced more efficiently atop the protocol in the current paper.  This
pulse synchronization procedure can in turn be used as the pulse
synchronization mechanism for making any Byzantine algorithm self-stabilize."
Reference [6] was an unpublished manuscript; this module reconstructs the
idea on top of our ss-Byz-Agree:

* Nodes take turns initiating a *pulse agreement* (value ``("pulse", k)``
  with a fresh counter ``k``); any node whose local pulse timer expires may
  initiate, with the timer staggered by node id so that, at steady state,
  the lowest-id correct node is the usual initiator and others act as
  fallbacks if it is faulty or its initiation fails.
* A node **fires its pulse** when the agreement decides.  ss-Byz-Agree's
  Timeliness-1(a) bounds the spread of decision times among correct nodes by
  ``3d`` -- which is therefore the pulse skew bound, inherited rather than
  re-proven.
* A refractory period ignores decisions that land too close to the previous
  pulse (residue of concurrent fallback initiations).

Self-stabilization is likewise inherited: the only extra state (the pulse
timer and the last-pulse stamp) is local-time-stamped and sanitized against
future/stale values each cleanup tick, so after the underlying protocol
stabilizes, the first decided pulse agreement resynchronizes everyone.

Guarantees once the system is stable (checked in tests and the ablation
bench):

* **Skew**: consecutive pulses fire within ``3d`` across correct nodes.
* **Period**: consecutive pulses at a node are separated by at least the
  refractory period and at most ``cycle + n * retry + Delta_agr``.
* **Convergence**: pulses resume within one cycle after ``Delta_stb``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.agreement import Decision, ProtocolNode
from repro.core.params import ProtocolParams
from repro.harness.scenario import Cluster, ScenarioConfig
from repro.runtime.sim_host import NodeContext


@dataclass(frozen=True)
class PulseConfig:
    """Pulse-layer timing, in units the caller picks (local time).

    ``cycle`` must leave room for a whole agreement plus the General pacing:
    ``cycle >= Delta_0 + Delta_agr`` is enforced.
    """

    cycle: float
    retry_gap: float
    refractory: float

    @staticmethod
    def default_for(params: ProtocolParams) -> "PulseConfig":
        cycle = 2.0 * (params.delta_0 + params.delta_agr)
        return PulseConfig(
            cycle=cycle,
            retry_gap=params.delta_agr + params.delta_0,
            refractory=cycle / 2.0,
        )


class PulseNode(ProtocolNode):
    """A protocol node that additionally fires synchronized pulses."""

    def __init__(
        self,
        node_id: int,
        ctx: NodeContext,
        params: ProtocolParams,
        pulse_config: Optional[PulseConfig] = None,
    ) -> None:
        super().__init__(node_id, ctx, params, on_decision=self._on_any_decision)
        self.pulse_config = pulse_config or PulseConfig.default_for(params)
        if self.pulse_config.cycle < params.delta_0 + params.delta_agr:
            raise ValueError("pulse cycle too short for one agreement")
        self.pulses: list[float] = []  # real times (observer-side record)
        self._last_pulse_local: Optional[float] = None
        self._pulse_counter = 0
        self._arm_timer(first=True)
        self.every_local(params.d, self._sanitize_pulse_state)

    # ------------------------------------------------------------------
    # Initiation (leader by staggered timeout)
    # ------------------------------------------------------------------
    def _arm_timer(self, first: bool = False) -> None:
        stagger = self.node_id * self.pulse_config.retry_gap
        delay = self.pulse_config.cycle + stagger
        if first:
            # Start-up: do not wait a whole cycle to produce the first pulse.
            delay = self.params.delta_0 + stagger
        self._pulse_timer = self.after_local(delay, self._timer_expired, tag="pulse")

    def _timer_expired(self) -> None:
        now = self.local_now()
        if (
            self._last_pulse_local is not None
            and now - self._last_pulse_local < self.pulse_config.cycle
        ):
            # A pulse arrived while we waited; fall back to the normal cycle.
            self._arm_timer()
            return
        self._pulse_counter += 1
        value = ("pulse", self.node_id, self._pulse_counter)
        if self.may_propose(value):
            self.propose(value)
        self._arm_timer()

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def _on_any_decision(self, decision: Decision) -> None:
        if not decision.decided:
            return
        value = decision.value
        if not (isinstance(value, tuple) and value and value[0] == "pulse"):
            return
        now = self.local_now()
        if (
            self._last_pulse_local is not None
            and now - self._last_pulse_local < self.pulse_config.refractory
        ):
            return  # residue of a concurrent fallback initiation
        self._last_pulse_local = now
        self.pulses.append(self.sim.now)
        if self.trace_enabled:
            self.trace("pulse", counter=value[2], initiator=value[1])
        # Re-anchor the cycle at the pulse for everyone (this is what keeps
        # the timers of correct nodes aligned).
        self._pulse_timer.cancel()
        self._arm_timer()

    # ------------------------------------------------------------------
    # Self-stabilization hygiene
    # ------------------------------------------------------------------
    def _sanitize_pulse_state(self) -> None:
        now = self.local_now()
        if self._last_pulse_local is not None and self._last_pulse_local > now:
            self._last_pulse_local = None  # future stamp: clearly wrong


class PulseSyncCluster:
    """A cluster of :class:`PulseNode` (optionally with Byzantine members)."""

    def __init__(
        self,
        params: ProtocolParams,
        seed: int = 0,
        pulse_config: Optional[PulseConfig] = None,
        byzantine: Optional[dict] = None,
        trace: bool = True,
    ) -> None:
        from repro.faults.byzantine import ByzantineNode

        self.params = params
        self.pulse_config = pulse_config or PulseConfig.default_for(params)
        base = Cluster.__new__(Cluster)
        config = ScenarioConfig(
            params=params, seed=seed, byzantine=byzantine or {}, trace=trace
        )
        # Reuse Cluster's wiring but build PulseNodes for the correct ids.
        base.config = config
        base.params = params
        from repro.net.delivery import UniformDelay
        from repro.net.network import Network
        from repro.sim.engine import Simulator
        from repro.sim.rand import RandomSource
        from repro.sim.trace import Tracer

        base.rng = RandomSource(config.seed)
        base.sim = Simulator()
        # Pulse trains are recorded on the nodes themselves (``pulses``), so
        # skew/period measurements stay available with tracing disabled --
        # long soak runs ride the tracer's zero-cost path.
        base.tracer = Tracer(enabled=trace)
        base.net = Network(
            base.sim,
            config.policy or UniformDelay(0.1 * params.delta, params.delta),
            base.rng.split("net"),
            base.tracer,
        )
        base.nodes = {}
        base.correct_ids = []
        base.byzantine_ids = []
        for node_id in range(params.n):
            ctx = NodeContext(
                sim=base.sim,
                net=base.net,
                tracer=base.tracer,
                clock_config=base._clock_config(node_id),
            )
            spec = (byzantine or {}).get(node_id)
            if spec is None:
                base.nodes[node_id] = PulseNode(
                    node_id, ctx, params, self.pulse_config
                )
                base.correct_ids.append(node_id)
            else:
                strategy = spec if hasattr(spec, "install") else spec(
                    base.rng.split(f"byz/{node_id}")
                )
                base.nodes[node_id] = ByzantineNode(node_id, ctx, params, strategy)
                base.byzantine_ids.append(node_id)
        self.cluster = base

    # ------------------------------------------------------------------
    # Driving and reading
    # ------------------------------------------------------------------
    def run_for(self, duration: float) -> None:
        self.cluster.run_for(duration)

    def pulse_trains(self) -> dict[int, list[float]]:
        """Real-time pulse instants per correct node."""
        return {
            node_id: list(self.cluster.nodes[node_id].pulses)  # type: ignore[union-attr]
            for node_id in self.cluster.correct_ids
        }

    def aligned_pulses(self) -> list[dict[int, float]]:
        """Group per-node pulses into cluster-wide pulse events.

        Greedy alignment: the k-th pulse of each node belongs to event k
        (valid while skews stay far below the cycle, which the tests assert).
        """
        trains = self.pulse_trains()
        if not trains:
            return []
        count = min(len(train) for train in trains.values())
        return [
            {node_id: trains[node_id][k] for node_id in trains}
            for k in range(count)
        ]

    def max_skew(self) -> Optional[float]:
        """Worst pulse-event skew across correct nodes."""
        events = self.aligned_pulses()
        if not events:
            return None
        return max(max(ev.values()) - min(ev.values()) for ev in events)


__all__ = ["PulseConfig", "PulseNode", "PulseSyncCluster"]
