"""Concurrent agreement invocations via indexing (paper footnote 9).

The base protocol runs one agreement instance per General, paced by
``Delta_0`` / ``Delta_v``.  The paper notes both limitations "can be
circumvented by adding counters to concurrent agreement initiations": each
invocation carries an index, and every piece of per-instance state --
Initiator-Accept bookkeeping, msgd-broadcast logs, round deadlines -- is
keyed by ``(G, index)`` instead of ``G``.

Implementation: instance keys are already opaque in
:class:`~repro.core.agreement.AgreementInstance` (the authenticated-sender
checks use ``general_node_id``), so an indexed instance is simply keyed by
the tuple ``(general_node_id, index)``.  This module provides the small API
for initiating and reading indexed agreements.

Pacing: the per-*instance* pacing rules still apply (a correct General does
not reuse an index within ``Delta_v``); *across* indexes there is no pacing
-- that is the whole point.  Agreement/Validity per instance follow from the
base protocol unchanged because instances share nothing but the wire.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.agreement import Decision, ProtocolNode
from repro.core.messages import InitiatorMsg, Value

IndexedKey = tuple[int, int]  # (general node id, index)


class IndexReuseError(ValueError):
    """An index was reused within ``Delta_v`` of its previous initiation.

    Footnote 9 removes the *cross*-index pacing, but the per-instance
    Sending Validity Criteria still apply: a correct General must not
    reinitiate the same ``(G, index)`` instance within ``Delta_v``, or
    receivers can confuse the two executions' messages.
    """


def indexed_general(general: int, index: int) -> IndexedKey:
    """The instance key for invocation ``index`` of ``general``."""
    return (general, index)


class ConcurrentGeneral:
    """Drives multiple concurrent agreements from one (correct) General.

    Usage::

        cg = ConcurrentGeneral(cluster.protocol_node(0))
        cg.propose("cmd-a")         # index 0
        cg.propose("cmd-b")         # index 1, immediately -- no Delta_0 wait
        cluster.run_for(params.delta_agr + 10 * params.d)
        cg.decisions(cluster)       # {0: ..., 1: ...}
    """

    def __init__(self, node: ProtocolNode) -> None:
        self.node = node
        self.next_index = 0
        self._index_last_used: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Initiation
    # ------------------------------------------------------------------
    def propose(self, value: Value, index: Optional[int] = None) -> int:
        """Initiate an indexed agreement; returns the index used.

        A fresh index is allocated by default, which trivially satisfies the
        per-instance pacing rules (an index is never reused).
        """
        if index is None:
            index = self.next_index
            self.next_index += 1
        else:
            # Keep the allocator ahead of explicit indexes so a later
            # default-allocated propose cannot collide with this one.
            self.next_index = max(self.next_index, index + 1)
        now = self.node.local_now()
        delta_v = self.node.params.delta_v
        last = self._index_last_used.get(index)
        if last is not None and now - last < delta_v:
            raise IndexReuseError(
                f"index {index} reused within Delta_v ({now - last:.3f} time "
                f"units after its previous initiation, Delta_v = "
                f"{delta_v:.3f}); a correct General must allocate a fresh "
                f"index"
            )
        # Amortized pruning keeps the pacing map bounded in a long-lived
        # process: stamps are inserted in monotone time order, so expired
        # entries cluster at the front.
        while self._index_last_used:
            stale = next(iter(self._index_last_used))
            if now - self._index_last_used[stale] <= delta_v:
                break
            del self._index_last_used[stale]
        self._index_last_used.pop(index, None)
        self._index_last_used[index] = now
        key = indexed_general(self.node.node_id, index)
        # The General clears its own prior messages for this instance.
        self.node.instance(key).ia.log.clear()
        self.node.trace("propose_indexed", value=value, index=index)
        self.node.broadcast(InitiatorMsg(key, value))
        return index

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def decisions_at(self, node: ProtocolNode) -> dict[int, Decision]:
        """Latest decision per index as observed by one node."""
        out: dict[int, Decision] = {}
        for dec in node.decisions:
            general = dec.general
            if (
                isinstance(general, tuple)
                and general[0] == self.node.node_id
            ):
                index = general[1]
                held = out.get(index)
                if held is None or dec.returned_real > held.returned_real:
                    out[index] = dec
        return out

    def decided_values(self, nodes: Iterable[ProtocolNode]) -> dict[int, set]:
        """Index -> set of decided values across the given nodes.

        Agreement per index means every set has size one.
        """
        out: dict[int, set] = {}
        for node in nodes:
            for index, dec in self.decisions_at(node).items():
                if dec.decided:
                    out.setdefault(index, set()).add(dec.value)
        return out


__all__ = [
    "ConcurrentGeneral",
    "IndexReuseError",
    "IndexedKey",
    "indexed_general",
]
