"""AsyncioHost: the real-time backend of the sans-I/O host API.

Runs a full n-node agreement instance over real coroutines: nodes are plain
:class:`~repro.core.agreement.ProtocolNode` objects (the exact same protocol
code the simulator drives), timers are ``loop.call_later`` wake-ups, and
messages travel through an in-process :class:`AsyncioTransport` that models
bounded delivery delay with the same :class:`~repro.net.delivery.
DeliveryPolicy` objects the simulator uses.

Time model
----------
Protocol time units map to wall-clock seconds through one ``time_scale``
factor (seconds per unit).  All hosts share a single epoch on the loop's
monotonic clock, so ``now()`` readings are mutually consistent; there is no
per-node drift modeling (asyncio scheduling jitter plays that role for
free, and rather less politely).

Determinism caveat
------------------
Unlike the simulator, runs here are **not** reproducible: wall-clock jitter
reorders deliveries and timer firings between runs even at a fixed seed.
The deterministic pieces (delay draws, Byzantine choices) still derive from
the master seed, but event interleaving does not -- use the sim backend for
anything that must be replayed bit-identically, and this backend to prove
the protocol stack really is sans-I/O (and as the template for a socket
deployment).  Pick ``time_scale`` large enough that loop jitter (~1-5 ms)
stays well below ``d``; the default maps ``d`` to 20 ms.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

from repro.core.agreement import Decision, ProtocolNode
from repro.core.messages import Value
from repro.core.params import ProtocolParams
from repro.net.delivery import (
    DeliveryPolicy,
    FixedDelay,
    LinkPartitionPolicy,
    UniformDelay,
)
from repro.net.network import Envelope
from repro.runtime.api import INERT_TIMER, Action, TimerHandle, TimerRegistry
from repro.runtime.framing import (
    FrameBatcher,
    FrameEncoder,
    FrameError,
    decode_frames,
    derive_key,
)
from repro.sim.rand import RandomSource
from repro.sim.trace import Tracer

#: Default wall-clock seconds per protocol time unit (d = 20 ms).
DEFAULT_TIME_SCALE = 0.02


def install_uvloop(strict: bool = False) -> bool:
    """Install uvloop as the event-loop policy if it is importable.

    Opt-in acceleration: call before ``asyncio.run``.  Returns ``True`` on
    success; with ``strict`` a missing uvloop raises instead of returning
    ``False``, so ``--uvloop`` on the CLI fails loudly rather than silently
    running the default loop.
    """
    try:
        import uvloop  # type: ignore
    except ImportError:
        if strict:
            raise RuntimeError("uvloop requested but not installed")
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


class AioTimerHandle:
    """Cancelable wrapper over an ``asyncio.TimerHandle``."""

    __slots__ = ("_handle", "_alive")

    def __init__(self) -> None:
        self._handle: Optional[asyncio.TimerHandle] = None
        self._alive = False

    def cancel(self) -> None:
        if self._alive:
            self._alive = False
            if self._handle is not None:
                self._handle.cancel()

    @property
    def alive(self) -> bool:
        return self._alive


class AsyncioTransport:
    """In-process asyncio message fabric with authenticated sender identity.

    Mirrors the :class:`~repro.net.network.Network` contract the protocol
    nodes rely on -- ``register`` / ``send`` / ``broadcast`` / ``node_ids``
    plus sent/delivered/dropped accounting -- but delivery is a
    ``loop.call_later`` wake-up instead of a simulator event.  The delivery
    policy draws per-copy delays (in protocol units) from the seeded stream,
    so the *intended* delays are deterministic even though actual arrival
    interleaving is at the loop's mercy.

    Every copy travels as **bytes**: the payload is encoded into an
    authenticated frame (:mod:`repro.runtime.framing` -- the same wire
    format the socket backend puts on UDP) at send time and decoded at
    delivery, so the asyncio backend exercises serialization and frame
    authentication even though it never leaves the process.  Frames that
    fail to decode are counted in ``rejected_count`` and dropped.

    With ``coalesce`` on (the default), copies whose delivery timers land
    in the same loop tick are packed into one BATCH frame per (receiver,
    sender) run and decoded together -- the same datagram coalescing the
    socket backend puts on the wire, here exercised in-process so the
    conformance suite covers the batch path on every backend run.
    """

    def __init__(
        self,
        time_scale: float = DEFAULT_TIME_SCALE,
        policy: Optional[DeliveryPolicy] = None,
        rand: Optional[RandomSource] = None,
        tracer: Optional[Tracer] = None,
        auth_key: Optional[bytes] = None,
        codec: Optional[str] = None,
        coalesce: bool = True,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale!r}")
        self.loop = asyncio.get_running_loop()
        self.epoch = self.loop.time()
        self.time_scale = time_scale
        self.auth_key = auth_key if auth_key is not None else derive_key("aio-transport")
        self._encoder = FrameEncoder(self.auth_key, codec)
        self.codec = self._encoder.codec
        self.coalesce = coalesce
        self._batcher = FrameBatcher(self._encoder, self._transmit)
        self._flush_scheduled = False
        self._policy = policy
        self._rand = rand if rand is not None else RandomSource(0, "aio/net")
        self._tracer = tracer
        self._receivers: dict[int, Callable[[Envelope], None]] = {}
        self._node_ids: Optional[list[int]] = None
        self._isolated: frozenset[int] = frozenset()
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        self.rejected_count = 0
        #: Decode units emitted into the fabric -- one per datagram the
        #: socket backend would put on the wire.  With coalescing this is
        #: <= sent_count - dropped; the gap is the batching win.
        self.datagrams_sent = 0
        #: Copies suppressed by injected link faults (partition cuts and
        #: isolation) -- kept separate from ordinary policy drops so live
        #: runs can attribute loss to its cause, like the sim network does.
        self.dropped_fault_count = 0

    # ------------------------------------------------------------------
    # Live fault injection (sender-side drop matrix)
    # ------------------------------------------------------------------
    @property
    def policy(self) -> Optional[DeliveryPolicy]:
        return self._policy

    def set_policy(self, policy: Optional[DeliveryPolicy]) -> None:
        """Swap the delivery policy mid-run (live ``SwapPolicy``)."""
        self._policy = policy

    def set_partition(self, island: frozenset[int]) -> None:
        """Cut ``island`` off by wrapping the live policy (sim semantics)."""
        self._policy = LinkPartitionPolicy(
            self._policy if self._policy is not None else FixedDelay(0.0),
            frozenset(island),
        )

    def heal_partitions(self) -> None:
        """Heal every cut, unwrapping the wrapper stack entirely."""
        policy = self._policy
        unwrapped = False
        while isinstance(policy, LinkPartitionPolicy):
            policy = policy.inner
            unwrapped = True
        if unwrapped:
            self._policy = policy

    def isolate(self, nodes) -> None:
        """Hard-disconnect nodes: every copy touching them is suppressed."""
        self._isolated = self._isolated | frozenset(nodes)

    def reconnect(self, nodes) -> None:
        """Undo :meth:`isolate` for the given nodes."""
        self._isolated = self._isolated - frozenset(nodes)

    def _fault_blocked(self, sender: int, receiver: int) -> bool:
        isolated = self._isolated
        return bool(isolated) and (sender in isolated or receiver in isolated)

    # ------------------------------------------------------------------
    # Time (shared axis for every host on this transport)
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current protocol-local time (loop seconds / time_scale)."""
        return (self.loop.time() - self.epoch) / self.time_scale

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(self, node_id: int, receiver: Callable[[Envelope], None]) -> None:
        if node_id in self._receivers:
            raise ValueError(f"node {node_id} already registered")
        self._receivers[node_id] = receiver
        self._node_ids = None

    @property
    def node_ids(self) -> list[int]:
        if self._node_ids is None:
            self._node_ids = sorted(self._receivers)
        return list(self._node_ids)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, sender: int, receiver: int, payload: object) -> None:
        if receiver not in self._receivers:
            raise ValueError(f"unknown receiver {receiver}")
        body = self._encoder.encode_body(payload, self.now())
        self._send_copy(sender, receiver, payload, body)

    def broadcast(self, sender: int, payload: object) -> None:
        """n point-to-point copies, one per registered node (self included).

        The envelope body is encoded **once** for the whole wave (one
        ``sent_at`` stamp, as the sim network stamps a broadcast once);
        only the per-copy policy draw and delivery timer differ.
        """
        body = self._encoder.encode_body(payload, self.now())
        for receiver in self.node_ids:
            self._send_copy(sender, receiver, payload, body)

    def _send_copy(
        self, sender: int, receiver: int, payload: object, body: bytes
    ) -> None:
        self.sent_count += 1
        tracer = self._tracer
        if tracer is not None:
            if tracer.enabled:
                tracer.record(
                    self.now(), sender, "send", receiver=receiver, payload=payload
                )
            else:
                tracer.bump("send")
        if self._fault_blocked(sender, receiver):
            self.dropped_count += 1
            self.dropped_fault_count += 1
            return
        delay_units = 0.0
        if self._policy is not None:
            decision = self._policy.decide(sender, receiver, payload, self._rand)
            if decision.drop:
                self.dropped_count += 1
                if decision.partition:
                    self.dropped_fault_count += 1
                return
            delay_units = decision.delay
        if delay_units > 0.0:
            self.loop.call_later(
                delay_units * self.time_scale,
                self._enqueue,
                receiver,
                sender,
                body,
            )
        else:
            self._enqueue(receiver, sender, body)

    def _enqueue(self, receiver: int, sender: int, body: bytes) -> None:
        """A copy's delivery timer fired: queue it for the tick's flush.

        Coalescing happens here, not at send time -- only copies whose
        *delivery* moments coincide share a datagram, so the policy's drawn
        delays still govern arrival order exactly as before.
        """
        if not self.coalesce:
            self._transmit(receiver, self._encoder.frame(sender, body), 1)
            return
        self._batcher.add(receiver, sender, body)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.loop.call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        self._batcher.flush()

    def _transmit(self, receiver: int, frame_buf, count: int) -> None:
        """Decode one datagram immediately; deliver its frames next tick.

        Decode happens here because ``frame_buf`` is the encoder's reused
        buffer (invalid after the next frame is built); delivery is
        deferred so a receiver's reply sends never run synchronously
        inside another node's ``send`` call.
        """
        self.datagrams_sent += 1
        try:
            frames = decode_frames(frame_buf, self.auth_key)
        except FrameError:
            self.rejected_count += 1
            if self._tracer is not None:
                self._tracer.bump("frame_rejected")
            return
        self.loop.call_soon(self._deliver_frames, receiver, frames)

    def _deliver_frames(self, receiver: int, frames) -> None:
        now = self.now()
        tracer = self._tracer
        receive = self._receivers[receiver]
        for sender, payload, sent_at in frames:
            self.delivered_count += 1
            envelope = Envelope(
                sender=sender,
                receiver=receiver,
                payload=payload,
                sent_at=sent_at,
                delivered_at=now,
            )
            if tracer is not None:
                if tracer.enabled:
                    tracer.record(
                        now, receiver, "deliver", sender=sender, payload=payload
                    )
                else:
                    tracer.bump("deliver")
            receive(envelope)


class AsyncioHost:
    """One node's :class:`~repro.runtime.api.ProtocolHost` on the asyncio loop."""

    def __init__(
        self,
        node_id: int,
        transport: AsyncioTransport,
        params: Optional[ProtocolParams] = None,
        rand: Optional[RandomSource] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.node_id = node_id
        self.params = params
        self.transport = transport
        # ``net`` alias: Byzantine strategies and helpers written against the
        # sim Network's surface (node_ids, send(sender, ...)) keep working.
        self.net = transport
        self.loop = transport.loop
        self.time_scale = transport.time_scale
        self.rand = rand if rand is not None else RandomSource(0, f"aio/host/{node_id}")
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self._registry = TimerRegistry()
        self._closed = False
        self.now = transport.now  # hot-path binding (shared clock axis)

    # ------------------------------------------------------------------
    # Time: the wall axis *is* the local axis (no drift modeling)
    # ------------------------------------------------------------------
    def now(self) -> float:  # shadowed by the instance binding above
        return self.transport.now()

    def real_now(self) -> float:
        return self.transport.now()

    def real_at_local(self, local_time: float) -> float:
        return local_time

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def schedule_after(
        self, delay_local: float, action: Action, tag: str = ""
    ) -> TimerHandle:
        if self._closed:
            # In-flight deliveries can still reach the node in the loop
            # iteration that tears the cluster down; a closed host refuses
            # to arm anything new so the registry stays drained.
            return INERT_TIMER
        handle = AioTimerHandle()

        def fire() -> None:
            handle._alive = False
            action()

        handle._handle = self.loop.call_later(
            max(0.0, delay_local) * self.time_scale, fire
        )
        handle._alive = True
        self._registry.track(handle)
        return handle

    def schedule_at(
        self, when_local: float, action: Action, tag: str = ""
    ) -> TimerHandle:
        return self.schedule_after(when_local - self.now(), action, tag)

    def live_timer_count(self) -> int:
        return self._registry.live_count()

    def cancel_all_timers(self) -> None:
        self._registry.cancel_all()

    def close(self) -> None:
        """Cancel every pending timer and refuse new ones (teardown)."""
        self._closed = True
        self._registry.cancel_all()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def attach(self, receiver: Callable[[Envelope], None]) -> None:
        self.transport.register(self.node_id, receiver)

    def send(self, receiver: int, payload: object) -> None:
        self.transport.send(self.node_id, receiver, payload)

    def broadcast(self, payload: object) -> None:
        self.transport.broadcast(self.node_id, payload)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    @property
    def trace_enabled(self) -> bool:
        return self.tracer.enabled

    def trace(self, kind: str, **detail: object) -> None:
        tracer = self.tracer
        if tracer.enabled:
            tracer.record(
                self.transport.now(),
                self.node_id,
                kind,
                local_time=self.now(),
                **detail,
            )
        else:
            tracer.bump(kind)


class AsyncioCluster:
    """An n-node in-process cluster on the running asyncio loop.

    Must be constructed inside a coroutine (the transport binds to the
    running loop).  Correct ids get :class:`ProtocolNode`; ids named in
    ``byzantine`` get a :class:`~repro.faults.byzantine.ByzantineNode` with
    the given strategy (or strategy factory), exactly as in the simulator's
    scenario builder.  Call :meth:`close` when done so the periodic cleanup
    ticks stop and the loop can drain.
    """

    def __init__(
        self,
        params: ProtocolParams,
        seed: int = 0,
        time_scale: float = DEFAULT_TIME_SCALE,
        byzantine: Optional[dict] = None,
        policy: Optional[DeliveryPolicy] = None,
        trace: bool = False,
        codec: Optional[str] = None,
    ) -> None:
        from repro.faults.byzantine import ByzantineNode

        self.params = params
        self.rng = RandomSource(seed)
        self.tracer = Tracer(enabled=trace)
        # Leave headroom under delta: asyncio adds its own latency on top of
        # the drawn delay, and the drawn + actual total must stay below d.
        self.transport = AsyncioTransport(
            time_scale=time_scale,
            policy=policy or UniformDelay(0.05 * params.delta, 0.5 * params.delta),
            rand=self.rng.split("net"),
            tracer=self.tracer,
            auth_key=derive_key(f"aio-cluster/{seed}"),
            codec=codec,
        )
        self.nodes: dict[int, object] = {}
        self.hosts: dict[int, AsyncioHost] = {}
        self.correct_ids: list[int] = []
        self.byzantine_ids: list[int] = []
        self._decision_seen = asyncio.Event()
        self._decision_observers: list[Callable[[Decision], None]] = []
        byzantine = byzantine or {}
        if len(byzantine) > params.f:
            raise ValueError(
                f"{len(byzantine)} Byzantine nodes exceeds f={params.f}"
            )
        for node_id in range(params.n):
            host = AsyncioHost(
                node_id,
                self.transport,
                params=params,
                rand=self.rng.split(f"host/{node_id}"),
                tracer=self.tracer,
            )
            self.hosts[node_id] = host
            spec = byzantine.get(node_id)
            if spec is None:
                self.nodes[node_id] = ProtocolNode(
                    node_id, host, params, on_decision=self._on_decision
                )
                self.correct_ids.append(node_id)
            else:
                strategy = spec if hasattr(spec, "install") else spec(
                    self.rng.split(f"byz/{node_id}")
                )
                self.nodes[node_id] = ByzantineNode(node_id, host, params, strategy)
                self.byzantine_ids.append(node_id)

    # ------------------------------------------------------------------
    # Decision plumbing
    # ------------------------------------------------------------------
    def protocol_node(self, node_id: int) -> ProtocolNode:
        """The correct node's protocol state (sim-Cluster-compatible)."""
        node = self.nodes[node_id]
        if not isinstance(node, ProtocolNode):
            raise TypeError(f"node {node_id} is not a correct protocol node")
        return node

    def _on_decision(self, decision: Decision) -> None:
        self._decision_seen.set()
        for observer in self._decision_observers:
            # This callback is the head of the decision-tap chain (service
            # taps stack on top and dispatch through it first): a failing
            # observer must not unwind their dispatch or starve later
            # observers.
            try:
                observer(decision)
            except Exception:
                pass

    def add_decision_observer(
        self, observer: Callable[[Decision], None]
    ) -> None:
        """Register a callback invoked (on the loop) for every decision.

        The observability layer uses this to feed latency histograms
        without the cluster knowing about metrics at all.
        """
        self._decision_observers.append(observer)

    def latest_decision_per_node(self, general: int) -> dict[int, Decision]:
        """The most recent outcome per correct node for one General."""
        latest: dict[int, Decision] = {}
        for node_id in self.correct_ids:
            for dec in self.nodes[node_id].decisions_for(general):
                held = latest.get(node_id)
                if held is None or dec.returned_real > held.returned_real:
                    latest[node_id] = dec
        return latest

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def propose(self, general: int, value: Value) -> bool:
        """Have a *correct* General initiate agreement on ``value``."""
        node = self.nodes[general]
        if not isinstance(node, ProtocolNode):
            raise TypeError(f"node {general} is not a correct protocol node")
        return node.propose(value)

    async def run_agreement(
        self,
        general: int,
        value: Optional[Value] = None,
        timeout_units: Optional[float] = None,
    ) -> dict[int, Decision]:
        """Run one agreement to completion; returns latest decision per node.

        If ``value`` is given and the General is correct, it proposes first
        (a Byzantine General's strategy schedules its own initiation).  Waits
        until every correct node has returned, or until ``timeout_units``
        (default ``3 * Delta_agr``) of protocol time elapse.
        """
        if value is not None and general in self.correct_ids:
            self.propose(general, value)
        if timeout_units is None:
            timeout_units = 3.0 * self.params.delta_agr
        deadline = self.transport.now() + timeout_units
        while self.transport.now() < deadline:
            if all(
                self.nodes[i].decisions_for(general) for i in self.correct_ids
            ):
                break
            remaining_s = (deadline - self.transport.now()) * self.transport.time_scale
            self._decision_seen.clear()
            try:
                await asyncio.wait_for(
                    self._decision_seen.wait(), timeout=max(0.0, remaining_s)
                )
            except asyncio.TimeoutError:
                break
        return self.latest_decision_per_node(general)

    async def sleep_units(self, duration_units: float) -> None:
        """Let the cluster run for a protocol-time duration."""
        await asyncio.sleep(duration_units * self.transport.time_scale)

    def close(self) -> None:
        """Cancel every node's pending timers (cleanup ticks included)."""
        for host in self.hosts.values():
            host.close()


async def run_agreement_async(
    n: int = 4,
    f: int = 1,
    seed: int = 0,
    value: Value = "v",
    general: int = 0,
    byzantine: Optional[dict] = None,
    time_scale: float = DEFAULT_TIME_SCALE,
    delta: float = 1.0,
    rho: float = 0.0,
    trace: bool = False,
    codec: Optional[str] = None,
) -> tuple[AsyncioCluster, dict[int, Decision]]:
    """Build an asyncio cluster, run one agreement, tear the timers down.

    Returns ``(cluster, latest decision per correct node)`` so callers can
    inspect transport counters and traces after the fact.
    """
    params = ProtocolParams(n=n, f=f, delta=delta, rho=rho)
    cluster = AsyncioCluster(
        params,
        seed=seed,
        time_scale=time_scale,
        byzantine=byzantine,
        trace=trace,
        codec=codec,
    )
    try:
        decisions = await cluster.run_agreement(general, value)
    finally:
        cluster.close()
    return cluster, decisions


__all__ = [
    "DEFAULT_TIME_SCALE",
    "AioTimerHandle",
    "AsyncioCluster",
    "AsyncioHost",
    "AsyncioTransport",
    "install_uvloop",
    "run_agreement_async",
]
