"""Batched UDP syscalls: ``sendmmsg``/``recvmmsg`` via ctypes.

Python's ``socket`` module exposes neither call, but on Linux they are the
difference between one syscall per datagram and one syscall per *wave* --
exactly the n-1 unicast copies a protocol broadcast produces.  This module
wraps both through ``libc`` with plain ``sendto``/``recvfrom`` as the
universal fallback:

* ``HAVE_MMSG`` is the import-time feature probe (Linux + libc symbols).
* The first runtime failure of either call flips a module-wide kill switch
  (:func:`disable`), so a seccomp filter or exotic kernel degrades the
  transport to the fallback path once, loudly, and permanently -- never a
  crash loop in an event-loop reader.

Only IPv4 is supported (the runtime binds ``127.0.0.1``); everything here
is loopback-local cluster traffic, same as the transports it serves.
"""

from __future__ import annotations

import ctypes
import socket
import struct
import sys

__all__ = [
    "HAVE_MMSG",
    "MmsgReceiver",
    "available",
    "disable",
    "send_many",
]

_MSG_DONTWAIT = 0x40  # Linux: non-blocking for this call only


class _Iovec(ctypes.Structure):
    _fields_ = [("iov_base", ctypes.c_void_p), ("iov_len", ctypes.c_size_t)]


class _SockaddrIn(ctypes.Structure):
    _fields_ = [
        ("sin_family", ctypes.c_uint16),
        ("sin_port", ctypes.c_uint16),
        ("sin_addr", ctypes.c_uint32),
        ("sin_zero", ctypes.c_char * 8),
    ]


class _Msghdr(ctypes.Structure):
    _fields_ = [
        ("msg_name", ctypes.c_void_p),
        ("msg_namelen", ctypes.c_uint32),
        ("msg_iov", ctypes.POINTER(_Iovec)),
        ("msg_iovlen", ctypes.c_size_t),
        ("msg_control", ctypes.c_void_p),
        ("msg_controllen", ctypes.c_size_t),
        ("msg_flags", ctypes.c_int),
    ]


class _Mmsghdr(ctypes.Structure):
    _fields_ = [("msg_hdr", _Msghdr), ("msg_len", ctypes.c_uint32)]


_libc = None
if sys.platform.startswith("linux"):
    try:
        _candidate = ctypes.CDLL(None, use_errno=True)
        if hasattr(_candidate, "sendmmsg") and hasattr(_candidate, "recvmmsg"):
            _candidate.sendmmsg.restype = ctypes.c_int
            _candidate.recvmmsg.restype = ctypes.c_int
            _libc = _candidate
    except OSError:  # pragma: no cover - no loadable libc
        _libc = None

HAVE_MMSG = _libc is not None
_disabled = False


def available() -> bool:
    """True when batched syscalls can be used right now."""
    return HAVE_MMSG and not _disabled


def disable() -> None:
    """Permanently fall back to sendto/recvfrom (first-failure kill switch)."""
    global _disabled
    _disabled = True


def _pack_sockaddr(addr: tuple) -> _SockaddrIn:
    host, port = addr[0], addr[1]
    (packed_ip,) = struct.unpack("=I", socket.inet_aton(host))
    return _SockaddrIn(
        sin_family=socket.AF_INET,
        sin_port=socket.htons(port),
        sin_addr=packed_ip,
        sin_zero=b"\x00" * 8,
    )


def send_many(sock: socket.socket, datagrams) -> int:
    """Send ``[(payload_bytes, (host, port)), ...]`` in one ``sendmmsg``.

    Returns the number of datagrams the kernel accepted (callers resend the
    tail via ``sendto`` if short).  Raises ``OSError`` on outright failure;
    callers should :func:`disable` and fall back.  Payloads must be
    ``bytes`` (immutable: the kernel reads them during the call).
    """
    count = len(datagrams)
    if count == 0:
        return 0
    iovecs = (_Iovec * count)()
    headers = (_Mmsghdr * count)()
    addrs = (_SockaddrIn * count)()
    keepalive = []
    for i, (payload, addr) in enumerate(datagrams):
        if not isinstance(payload, bytes):
            payload = bytes(payload)
        keepalive.append(payload)
        iovecs[i].iov_base = ctypes.cast(ctypes.c_char_p(payload), ctypes.c_void_p)
        iovecs[i].iov_len = len(payload)
        addrs[i] = _pack_sockaddr(addr)
        hdr = headers[i].msg_hdr
        hdr.msg_name = ctypes.cast(ctypes.byref(addrs[i]), ctypes.c_void_p)
        hdr.msg_namelen = ctypes.sizeof(_SockaddrIn)
        hdr.msg_iov = ctypes.pointer(iovecs[i])
        hdr.msg_iovlen = 1
    sent = _libc.sendmmsg(sock.fileno(), headers, count, 0)
    if sent < 0:
        errno = ctypes.get_errno()
        raise OSError(errno, f"sendmmsg failed: errno {errno}")
    return sent


class MmsgReceiver:
    """Reusable ``recvmmsg`` drain: preallocated buffers, zero per-call setup.

    :meth:`recv` returns ``memoryview`` slices into the receiver's own
    buffers -- valid only until the next ``recv`` call, which is exactly
    the lifetime a transport needs (decode + deliver, then drain again).
    An empty list means the socket is drained (EAGAIN).
    """

    __slots__ = ("_buffers", "_headers", "_iovecs", "_max_batch", "_views")

    def __init__(self, max_batch: int = 32, bufsize: int = 65536) -> None:
        self._max_batch = max_batch
        self._buffers = [bytearray(bufsize) for _ in range(max_batch)]
        self._views = [memoryview(buf) for buf in self._buffers]
        self._iovecs = (_Iovec * max_batch)()
        self._headers = (_Mmsghdr * max_batch)()
        for i, buf in enumerate(self._buffers):
            raw = (ctypes.c_char * len(buf)).from_buffer(buf)
            self._iovecs[i].iov_base = ctypes.cast(raw, ctypes.c_void_p)
            self._iovecs[i].iov_len = len(buf)
            hdr = self._headers[i].msg_hdr
            hdr.msg_name = None
            hdr.msg_namelen = 0
            hdr.msg_iov = ctypes.pointer(self._iovecs[i])
            hdr.msg_iovlen = 1

    def recv(self, sock: socket.socket):
        """Drain up to ``max_batch`` datagrams in one syscall."""
        got = _libc.recvmmsg(
            sock.fileno(), self._headers, self._max_batch, _MSG_DONTWAIT, None
        )
        if got < 0:
            errno = ctypes.get_errno()
            if errno in (11, 35):  # EAGAIN / EWOULDBLOCK (linux / bsd values)
                return []
            raise OSError(errno, f"recvmmsg failed: errno {errno}")
        return [self._views[i][: self._headers[i].msg_len] for i in range(got)]
