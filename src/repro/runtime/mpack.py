"""Vendored msgpack subset: the wire codec without the wheel.

The container image does not ship the ``msgpack`` C extension, which left
the frame format's ``b"M"`` codec byte dead code gated on an import.  This
module implements the subset of the msgpack spec the framing layer actually
emits -- nil, bool, int64-range integers, float64, str, bin, array, map
with string keys -- so the msgpack codec is *always* available: the C
extension is used when installed (``repro.runtime.framing`` prefers it for
decode), and this pure-Python fallback keeps the bytes on the wire
identical in meaning either way.  Interop is by construction: everything
packed here unpacks under ``msgpack.unpackb`` and vice versa (covered by
the with-msgpack CI leg).

Encode is append-only into a caller-supplied ``bytearray`` so the framing
layer can assemble header + body + tag in one preallocated buffer without
intermediate ``bytes`` objects; decode walks a ``memoryview`` without
slicing copies until leaf values materialize.
"""

from __future__ import annotations

import struct
from typing import Any

_FLOAT64 = struct.Struct(">Bd")
_UINT8 = struct.Struct(">BB")
_UINT16 = struct.Struct(">BH")
_UINT32 = struct.Struct(">BI")
_INT8 = struct.Struct(">Bb")
_INT16 = struct.Struct(">Bh")
_INT32 = struct.Struct(">Bi")
_INT64 = struct.Struct(">Bq")
_UINT64 = struct.Struct(">BQ")

_BE_U16 = struct.Struct(">H")
_BE_U32 = struct.Struct(">I")
_BE_I8 = struct.Struct(">b")
_BE_I16 = struct.Struct(">h")
_BE_I32 = struct.Struct(">i")
_BE_I64 = struct.Struct(">q")
_BE_F32 = struct.Struct(">f")
_BE_F64 = struct.Struct(">d")

INT64_MIN = -(2 ** 63)
UINT64_MAX = 2 ** 64 - 1


class MpackError(ValueError):
    """Malformed or unsupported msgpack data (encode- or decode-side)."""


def pack_str_into(buf: bytearray, value: str) -> None:
    """Append one msgpack str (fixstr / str8 / str16 / str32)."""
    data = value.encode("utf-8")
    size = len(data)
    if size < 32:
        buf.append(0xA0 | size)
    elif size < 256:
        buf += _UINT8.pack(0xD9, size)
    elif size < 65536:
        buf += _UINT16.pack(0xDA, size)
    else:
        buf += _UINT32.pack(0xDB, size)
    buf += data


def pack_into(buf: bytearray, obj: Any) -> None:
    """Append one msgpack value for ``obj`` (the codec-neutral tree types).

    Accepts exactly what the JSON codec accepts -- ``dict`` (string keys),
    ``list``/``tuple`` (encoded as arrays), ``str``, ``int`` (int64/uint64
    range), ``float``, ``bool``, ``None``, plus ``bytes`` -- and raises
    :class:`MpackError` for anything else, so undecodable payloads fail at
    encode time on either codec.
    """
    kind = type(obj)
    if kind is str:
        pack_str_into(buf, obj)
    elif kind is bool:
        buf.append(0xC3 if obj else 0xC2)
    elif kind is int:
        # Canonical (smallest) format at every boundary, matching what the
        # C extension emits -- byte-identical wires with or without it.
        if 0 <= obj < 128:
            buf.append(obj)
        elif -32 <= obj < 0:
            buf.append(obj & 0xFF)
        elif obj >= 0:
            if obj < 256:
                buf += _UINT8.pack(0xCC, obj)
            elif obj < 65536:
                buf += _UINT16.pack(0xCD, obj)
            elif obj < 2 ** 32:
                buf += _UINT32.pack(0xCE, obj)
            elif obj <= UINT64_MAX:
                buf += _UINT64.pack(0xCF, obj)
            else:
                raise MpackError(f"integer {obj} outside the 64-bit msgpack range")
        else:
            if obj >= -128:
                buf += _INT8.pack(0xD0, obj)
            elif obj >= -32768:
                buf += _INT16.pack(0xD1, obj)
            elif obj >= -(2 ** 31):
                buf += _INT32.pack(0xD2, obj)
            elif obj >= INT64_MIN:
                buf += _INT64.pack(0xD3, obj)
            else:
                raise MpackError(f"integer {obj} outside the 64-bit msgpack range")
    elif kind is float:
        buf += _FLOAT64.pack(0xCB, obj)
    elif obj is None:
        buf.append(0xC0)
    elif kind is dict:
        size = len(obj)
        if size < 16:
            buf.append(0x80 | size)
        elif size < 65536:
            buf += _UINT16.pack(0xDE, size)
        else:
            buf += _UINT32.pack(0xDF, size)
        for key, value in obj.items():
            if type(key) is not str:
                raise MpackError(f"non-string map key {key!r}")
            pack_str_into(buf, key)
            pack_into(buf, value)
    elif kind is list or kind is tuple:
        size = len(obj)
        if size < 16:
            buf.append(0x90 | size)
        elif size < 65536:
            buf += _UINT16.pack(0xDC, size)
        else:
            buf += _UINT32.pack(0xDD, size)
        for item in obj:
            pack_into(buf, item)
    elif kind is bytes or kind is bytearray:
        size = len(obj)
        if size < 256:
            buf += _UINT8.pack(0xC4, size)
        elif size < 65536:
            buf += _UINT16.pack(0xC5, size)
        else:
            buf += _UINT32.pack(0xC6, size)
        buf += obj
    else:
        # Subclasses (bool is the poster child: it subclasses int) fall
        # through to here unless their exact type matched above; treat real
        # subclass instances of the supported scalars conservatively.
        if isinstance(obj, bool):
            buf.append(0xC3 if obj else 0xC2)
        elif isinstance(obj, int):
            pack_into(buf, int(obj))
        elif isinstance(obj, float):
            buf += _FLOAT64.pack(0xCB, float(obj))
        elif isinstance(obj, str):
            pack_str_into(buf, str(obj))
        else:
            raise MpackError(f"type {type(obj).__name__!r} is not msgpack-packable")


def packb(obj: Any) -> bytes:
    """One-shot convenience: pack ``obj`` into fresh bytes."""
    buf = bytearray()
    pack_into(buf, obj)
    return bytes(buf)


class _Reader:
    """Cursor over a memoryview; bounds-checked reads, no slicing copies."""

    __slots__ = ("data", "pos", "size")

    def __init__(self, data: memoryview) -> None:
        self.data = data
        self.pos = 0
        self.size = len(data)

    def need(self, count: int) -> int:
        start = self.pos
        if start + count > self.size:
            raise MpackError("truncated msgpack data")
        self.pos = start + count
        return start


def _unpack_value(r: _Reader) -> Any:
    data = r.data
    start = r.need(1)
    tag = data[start]
    if tag < 0x80:  # positive fixint
        return tag
    if tag >= 0xE0:  # negative fixint
        return tag - 256
    if 0xA0 <= tag <= 0xBF:  # fixstr
        size = tag & 0x1F
        at = r.need(size)
        return str(data[at : at + size], "utf-8")
    if 0x80 <= tag <= 0x8F:  # fixmap
        return _unpack_map(r, tag & 0x0F)
    if 0x90 <= tag <= 0x9F:  # fixarray
        return [_unpack_value(r) for _ in range(tag & 0x0F)]
    if tag == 0xC0:
        return None
    if tag == 0xC2:
        return False
    if tag == 0xC3:
        return True
    if tag == 0xCB:  # float64
        at = r.need(8)
        return _BE_F64.unpack_from(data, at)[0]
    if tag == 0xCA:  # float32 (never emitted; accepted for interop)
        at = r.need(4)
        return _BE_F32.unpack_from(data, at)[0]
    if tag == 0xD3:  # int64
        at = r.need(8)
        return _BE_I64.unpack_from(data, at)[0]
    if tag == 0xD9:  # str8
        at = r.need(1)
        size = data[at]
        at = r.need(size)
        return str(data[at : at + size], "utf-8")
    if tag == 0xDA:  # str16
        at = r.need(2)
        size = _BE_U16.unpack_from(data, at)[0]
        at = r.need(size)
        return str(data[at : at + size], "utf-8")
    if tag == 0xDB:  # str32
        at = r.need(4)
        size = _BE_U32.unpack_from(data, at)[0]
        at = r.need(size)
        return str(data[at : at + size], "utf-8")
    if tag == 0xCC:  # uint8
        at = r.need(1)
        return data[at]
    if tag == 0xCD:  # uint16
        at = r.need(2)
        return _BE_U16.unpack_from(data, at)[0]
    if tag == 0xCE:  # uint32
        at = r.need(4)
        return _BE_U32.unpack_from(data, at)[0]
    if tag == 0xCF:  # uint64
        at = r.need(8)
        return struct.unpack_from(">Q", data, at)[0]
    if tag == 0xD0:  # int8
        at = r.need(1)
        return _BE_I8.unpack_from(data, at)[0]
    if tag == 0xD1:  # int16
        at = r.need(2)
        return _BE_I16.unpack_from(data, at)[0]
    if tag == 0xD2:  # int32
        at = r.need(4)
        return _BE_I32.unpack_from(data, at)[0]
    if tag == 0xDC:  # array16
        at = r.need(2)
        size = _BE_U16.unpack_from(data, at)[0]
        return [_unpack_value(r) for _ in range(size)]
    if tag == 0xDD:  # array32
        at = r.need(4)
        size = _BE_U32.unpack_from(data, at)[0]
        return [_unpack_value(r) for _ in range(size)]
    if tag == 0xDE:  # map16
        at = r.need(2)
        return _unpack_map(r, _BE_U16.unpack_from(data, at)[0])
    if tag == 0xDF:  # map32
        at = r.need(4)
        return _unpack_map(r, _BE_U32.unpack_from(data, at)[0])
    if tag == 0xC4:  # bin8
        at = r.need(1)
        size = data[at]
        at = r.need(size)
        return bytes(data[at : at + size])
    if tag == 0xC5:  # bin16
        at = r.need(2)
        size = _BE_U16.unpack_from(data, at)[0]
        at = r.need(size)
        return bytes(data[at : at + size])
    if tag == 0xC6:  # bin32
        at = r.need(4)
        size = _BE_U32.unpack_from(data, at)[0]
        at = r.need(size)
        return bytes(data[at : at + size])
    raise MpackError(f"unsupported msgpack tag 0x{tag:02x}")


def _unpack_map(r: _Reader, size: int) -> dict:
    result = {}
    for _ in range(size):
        key = _unpack_value(r)
        if not isinstance(key, str):
            raise MpackError(f"non-string map key {key!r}")
        result[key] = _unpack_value(r)
    return result


def unpackb(data) -> Any:
    """Unpack exactly one msgpack value; trailing bytes are an error."""
    view = data if isinstance(data, memoryview) else memoryview(data)
    reader = _Reader(view)
    value = _unpack_value(reader)
    if reader.pos != reader.size:
        raise MpackError(f"{reader.size - reader.pos} trailing bytes after value")
    return value


__all__ = [
    "INT64_MIN",
    "MpackError",
    "UINT64_MAX",
    "pack_into",
    "pack_str_into",
    "packb",
    "unpackb",
]
