"""SimHost: the discrete-event backend of the sans-I/O host API.

A thin adapter gluing one node's view of the simulator -- its
:class:`~repro.sim.clock.DriftClock`, the shared :class:`~repro.net.network.
Network`, the shared :class:`~repro.sim.trace.Tracer`, and the event kernel's
timers -- behind :class:`repro.runtime.api.ProtocolHost`.  It is deliberately
*only* glue: every call lands on the exact same kernel primitive the
pre-refactor node used, in the same order, so runs are bit-identical at fixed
seeds (the golden-row and trace-digest suites enforce this).

:class:`NodeContext` lives here too: it is the sim-specific bundle scenario
builders hand to nodes, and ``Node`` lazily wraps it in a :class:`SimHost`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.network import Network
from repro.runtime.api import INERT_TIMER, Action, TimerHandle, TimerRegistry
from repro.sim.clock import ClockConfig, DriftClock
from repro.sim.engine import Simulator
from repro.sim.rand import RandomSource
from repro.sim.trace import Tracer


@dataclass
class NodeContext:
    """Everything a node needs to exist in a simulated scenario."""

    sim: Simulator
    net: Network
    tracer: Tracer
    clock_config: ClockConfig = ClockConfig()
    rand: Optional[RandomSource] = None


class SimHost:
    """One node's :class:`~repro.runtime.api.ProtocolHost` over the simulator."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        net: Network,
        tracer: Tracer,
        clock_config: ClockConfig = ClockConfig(),
        rand: Optional[RandomSource] = None,
        params=None,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.net = net
        self.tracer = tracer
        self.clock = DriftClock(sim, clock_config)
        self.rand = rand if rand is not None else RandomSource(0, f"host/{node_id}")
        self.params = params
        self._registry = TimerRegistry()
        self._closed = False
        # Hot-path binding: ``now`` is the single most-called host method
        # (every arrival and timer reads the clock), so it resolves straight
        # to the clock's inlined affine map.
        self.now = self.clock.local_now

    @classmethod
    def from_context(cls, node_id: int, ctx: NodeContext) -> "SimHost":
        return cls(
            node_id, ctx.sim, ctx.net, ctx.tracer, ctx.clock_config, rand=ctx.rand
        )

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def now(self) -> float:  # shadowed by the instance binding above
        return self.clock.local_now()

    def real_now(self) -> float:
        return self.sim.now

    def real_at_local(self, local_time: float) -> float:
        return self.clock.real_at_local(local_time)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def schedule_after(
        self, delay_local: float, action: Action, tag: str = ""
    ) -> TimerHandle:
        """Schedule on the kernel, translating local delay through the clock."""
        if self._closed:
            return INERT_TIMER
        real_delay = self.clock.real_delay_for_local(delay_local)
        handle = self.sim.schedule_in(real_delay, action, tag=tag)
        self._registry.track(handle)
        return handle

    def schedule_at(
        self, when_local: float, action: Action, tag: str = ""
    ) -> TimerHandle:
        return self.schedule_after(max(0.0, when_local - self.now()), action, tag)

    def live_timer_count(self) -> int:
        return self._registry.live_count()

    def cancel_all_timers(self) -> None:
        self._registry.cancel_all()

    def close(self) -> None:
        """Cancel every pending timer and refuse new ones (teardown).

        Never called by scenario builders (the kernel simply stops running),
        so golden-row runs are untouched; it exists so the sim backend obeys
        the same close semantics the conformance contract demands of the
        wall-clock backends.
        """
        self._closed = True
        self._registry.cancel_all()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def attach(self, receiver: Callable) -> None:
        """Register this node's message handler with the network."""
        self.net.register(self.node_id, receiver)

    def send(self, receiver: int, payload: object) -> None:
        self.net.send(self.node_id, receiver, payload)

    def broadcast(self, payload: object) -> None:
        self.net.broadcast(self.node_id, payload)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    @property
    def trace_enabled(self) -> bool:
        return self.tracer.enabled

    def trace(self, kind: str, **detail: object) -> None:
        """Record a trace event with both clocks (count-only when disabled)."""
        tracer = self.tracer
        if tracer.enabled:
            tracer.record(
                self.sim.now, self.node_id, kind, local_time=self.now(), **detail
            )
        else:
            tracer.bump(kind)


__all__ = ["NodeContext", "SimHost"]
