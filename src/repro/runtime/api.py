"""The sans-I/O host API: what the protocol core needs from a runtime.

The paper specifies ss-Byz-Agree purely in terms of message arrivals, local
timers and deadlines -- nothing in the protocol text mentions an event loop,
a socket, or a discrete-event queue.  This module pins that boundary down as
a structural :class:`ProtocolHost` interface so the evaluators in
:mod:`repro.core` compile against *capabilities* (read the local clock,
schedule a cancelable timer, send/broadcast, draw randomness, trace) instead
of against the simulator.  Everything under ``repro/core/`` imports only
this module; concrete runtimes live next door:

* :class:`repro.runtime.sim_host.SimHost` -- a thin adapter over the
  discrete-event kernel (``repro.sim``), bit-identical to the pre-refactor
  wiring at fixed seeds;
* :class:`repro.runtime.aio.AsyncioHost` -- real coroutines and wall-clock
  timers on the ``asyncio`` loop, with an in-process transport;
* :class:`repro.runtime.socket_host.SocketHost` -- real UDP datagrams on
  localhost, one OS process per node, authenticated frames.

A new backend only has to satisfy this surface; the conformance suite in
``tests/test_runtime.py`` spells out the contract (monotonic ``now()``,
FIFO ordering of same-deadline timers, idempotent cancelation, refusal of
timers after ``close()``, ``live_timer_count()`` draining to zero,
exactly-once broadcast, trace attribution).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional, Protocol, Sequence, TypeVar

if TYPE_CHECKING:  # structural typing only -- no runtime import of the sim
    from repro.core.params import ProtocolParams

T = TypeVar("T")

Action = Callable[[], None]


class TimerHandle(Protocol):
    """A cancelable reference to a scheduled timer."""

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent."""
        ...

    @property
    def alive(self) -> bool:
        """True while the timer is still pending (not fired, not canceled)."""
        ...


class RandomStream(Protocol):
    """Deterministic, splittable randomness (the shape of ``RandomSource``).

    The core only ever *consumes* draws (fault corruption takes a stream as
    an argument); hosts expose a per-node stream via :attr:`ProtocolHost.rand`
    so protocol extensions can randomize without importing a backend.
    """

    def split(self, name: str) -> "RandomStream": ...
    def uniform(self, low: float, high: float) -> float: ...
    def randint(self, low: int, high: int) -> int: ...
    def random(self) -> float: ...
    def chance(self, probability: float) -> bool: ...
    def choice(self, items: Sequence[T]) -> T: ...
    def sample(self, items: Sequence[T], k: int) -> list[T]: ...
    def shuffled(self, items: Sequence[T]) -> list[T]: ...
    def gauss(self, mu: float, sigma: float) -> float: ...


class TraceSink(Protocol):
    """Where trace events go (the shape of :class:`repro.sim.trace.Tracer`)."""

    enabled: bool

    def record(
        self,
        real_time: float,
        node: Optional[int],
        kind: str,
        local_time: Optional[float] = None,
        **detail: Any,
    ) -> None: ...

    def bump(self, kind: str) -> None: ...


class _AlwaysEnabled:
    """Stand-in tracer for hosts that expose none: guards stay truthy."""

    __slots__ = ()
    enabled = True


ALWAYS_ENABLED = _AlwaysEnabled()


class Delivery(Protocol):
    """A delivered message as the protocol sees it (authenticated sender)."""

    sender: int
    payload: object


class Transport(Protocol):
    """A message fabric a host sends through (sim network, asyncio router)."""

    def register(self, node_id: int, receiver: Callable[[Any], None]) -> None: ...
    def send(self, sender: int, receiver: int, payload: object) -> None: ...
    def broadcast(self, sender: int, payload: object) -> None: ...

    @property
    def node_ids(self) -> list[int]: ...


class ProtocolHost(Protocol):
    """Everything the protocol core is allowed to ask of its runtime.

    Time is *local* time: hosts own the clock model (drifting affine clocks
    in the simulator, scaled wall clock under asyncio) and the core only
    measures intervals of ``now()``.  ``real_now()`` / ``real_at_local()``
    expose the observer-side real axis the paper's proofs quantify over --
    results bookkeeping only, never protocol decisions.

    Optional extras the evaluators resolve via ``getattr`` (hosts without
    them get safe fallbacks): ``tracer`` (guarded zero-cost tracing),
    ``schedule_after`` itself (timer-less hosts fall back to lazy,
    comparison-based deadline deactivation), and ``resend_gap_d`` (ablation
    knob).
    """

    node_id: int
    params: "ProtocolParams"

    # -- time ----------------------------------------------------------
    def now(self) -> float:
        """Current local-clock reading (protocol time units)."""
        ...

    def real_now(self) -> float:
        """Observer-side real time (results bookkeeping only)."""
        ...

    def real_at_local(self, local_time: float) -> float:
        """Real time at which the local reading equals ``local_time``."""
        ...

    # -- timers --------------------------------------------------------
    def schedule_after(
        self, delay_local: float, action: Action, tag: str = ""
    ) -> TimerHandle:
        """Run ``action`` after a local-time delay; returns a cancelable handle."""
        ...

    def schedule_at(
        self, when_local: float, action: Action, tag: str = ""
    ) -> TimerHandle:
        """Run ``action`` at an absolute local time (clamped to now)."""
        ...

    def live_timer_count(self) -> int:
        """Number of still-pending timers scheduled through this host."""
        ...

    def cancel_all_timers(self) -> None:
        """Cancel every pending timer scheduled through this host."""
        ...

    # -- transport -----------------------------------------------------
    def send(self, receiver: int, payload: object) -> None:
        """Point-to-point send with authenticated sender identity."""
        ...

    def broadcast(self, payload: object) -> None:
        """Send to every node, including self (no broadcast medium)."""
        ...

    # -- randomness and tracing ---------------------------------------
    @property
    def rand(self) -> RandomStream:
        """Per-node deterministic random stream."""
        ...

    def trace(self, kind: str, **detail: object) -> None:
        """Record a trace event attributed to this host's node."""
        ...


class InertTimerHandle:
    """A never-armed handle: what a *closed* host returns from scheduling.

    The conformance contract requires every backend to refuse new timers
    after ``close()`` -- returning this shared sentinel keeps the refusal
    allocation-free and makes ``handle.alive`` immediately False.
    """

    __slots__ = ()

    def cancel(self) -> None:
        pass

    @property
    def alive(self) -> bool:
        return False


INERT_TIMER = InertTimerHandle()


class TimerRegistry:
    """Host-side bookkeeping of live timer handles.

    Canceled and fired handles are compacted out amortizedly (the threshold
    doubles with the surviving population, so a host that simply has many
    live timers is not rescanned on every append).  This is what backs
    :meth:`ProtocolHost.live_timer_count` -- the introspection hook the
    timer-hygiene tests assert drains to zero after each agreement instance.
    """

    __slots__ = ("_handles", "_compact_at")

    def __init__(self) -> None:
        self._handles: list[TimerHandle] = []
        self._compact_at = 256

    def track(self, handle: TimerHandle) -> TimerHandle:
        handles = self._handles
        handles.append(handle)
        if len(handles) > self._compact_at:
            self._handles = [h for h in handles if h.alive]
            self._compact_at = max(256, 2 * len(self._handles))
        return handle

    def live_count(self) -> int:
        """Number of handles still pending (compacts as a side effect)."""
        self._handles = [h for h in self._handles if h.alive]
        self._compact_at = max(256, 2 * len(self._handles))
        return len(self._handles)

    def cancel_all(self) -> None:
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()
        self._compact_at = 256


__all__ = [
    "ALWAYS_ENABLED",
    "Action",
    "Delivery",
    "INERT_TIMER",
    "InertTimerHandle",
    "ProtocolHost",
    "RandomStream",
    "TimerHandle",
    "TimerRegistry",
    "TraceSink",
    "Transport",
]
