"""Shared wire framing for the byte-level runtime backends.

The sim backend hands Python objects straight to receivers, but the asyncio
and socket backends move *bytes*: every message is one self-delimiting,
authenticated frame.  Keeping the encode/decode pair here -- used verbatim
by :class:`repro.runtime.aio.AsyncioTransport` and
:class:`repro.runtime.socket_host.SocketTransport` -- means both non-sim
transports agree on the format byte for byte, and the hardening tests in
``tests/test_framing.py`` cover them both at once.

Frame layout (big-endian)::

    magic   2 bytes   b"SB"
    codec   1 byte    b"J" (json) or b"M" (msgpack, only if installed)
    sender  4 bytes   claimed sender id
    length  4 bytes   body length in bytes (<= MAX_BODY_BYTES)
    body    N bytes   codec({"t": sent_at, "p": <tagged payload>})
    tag     16 bytes  HMAC-SHA256(key, header || body), truncated

The tag covers the header, so a frame with a forged ``sender`` fails
authentication outright -- this is what implements the model's Definition 2
("the receiver always learns the true sender") over a fabric where anyone
can transmit a datagram.  The key is a per-cluster shared secret: it defends
sender identity against *network-level* spoofing, which is the model's
guarantee; it does not model key compromise (a Byzantine process holds the
cluster key but only ever frames its own id through this API).

Payloads are the protocol message dataclasses, scalars, tuples and the
``BOTTOM`` sentinel; anything else is refused at encode time rather than
silently mangled.  msgpack is optional equipment -- the container may not
ship it -- so the codec is negotiated per frame and JSON is the default.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import json
import struct
from typing import Any, NamedTuple

from repro.core.messages import ALL_MESSAGE_TYPES
from repro.core.params import BOTTOM

try:  # optional: the image does not bake msgpack in; JSON is the default
    import msgpack  # type: ignore

    HAVE_MSGPACK = True
except ImportError:  # pragma: no cover - exercised only without msgpack
    msgpack = None
    HAVE_MSGPACK = False

MAGIC = b"SB"
CODEC_JSON = b"J"
CODEC_MSGPACK = b"M"
#: Bound on the encoded body.  Protocol messages are tens of bytes; the cap
#: keeps every frame inside a single localhost UDP datagram with room to
#: spare and turns a runaway payload into a loud error instead of silent
#: fragmentation.
MAX_BODY_BYTES = 16384
TAG_BYTES = 16
_HEADER = struct.Struct(">2s c I I")
HEADER_BYTES = _HEADER.size
#: Smallest well-formed frame (empty body is still invalid JSON, but the
#: *structural* minimum is header + tag).
MIN_FRAME_BYTES = HEADER_BYTES + TAG_BYTES

_MESSAGE_CLASSES = {cls.__name__: cls for cls in ALL_MESSAGE_TYPES}


class FrameError(Exception):
    """Base class for every framing failure."""


class TruncatedFrameError(FrameError):
    """The byte string is shorter than its header promises."""


class OversizedFrameError(FrameError):
    """The body exceeds :data:`MAX_BODY_BYTES` (encode- or decode-side)."""


class FrameAuthError(FrameError):
    """The authentication tag does not verify (includes forged senders)."""


class FrameCodecError(FrameError):
    """Bad magic, unknown codec, or an undecodable/unencodable payload."""


def derive_key(material: str) -> bytes:
    """Derive a 32-byte frame key from a seed string (per-cluster secret)."""
    return hashlib.sha256(f"repro-frame-key:{material}".encode()).digest()


# ---------------------------------------------------------------------------
# Payload tagging: protocol objects <-> codec-neutral trees
# ---------------------------------------------------------------------------
def _to_wire(obj: Any) -> Any:
    if obj is BOTTOM:
        return {"__": "bot"}
    if isinstance(obj, ALL_MESSAGE_TYPES):
        return {
            "__": "msg",
            "k": type(obj).__name__,
            "f": {
                field.name: _to_wire(getattr(obj, field.name))
                for field in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, tuple):
        return {"__": "tup", "v": [_to_wire(item) for item in obj]}
    if isinstance(obj, list):
        return [_to_wire(item) for item in obj]
    if isinstance(obj, dict):
        for key in obj:
            if not isinstance(key, str):
                raise FrameCodecError(f"non-string dict key {key!r}")
        return {"__": "map", "v": {key: _to_wire(val) for key, val in obj.items()}}
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise FrameCodecError(f"payload type {type(obj).__name__!r} is not wire-safe")


def _from_wire(tree: Any) -> Any:
    if isinstance(tree, dict):
        tag = tree.get("__")
        if tag == "bot":
            return BOTTOM
        if tag == "msg":
            cls = _MESSAGE_CLASSES.get(tree.get("k"))
            if cls is None:
                raise FrameCodecError(f"unknown message class {tree.get('k')!r}")
            fields = tree.get("f")
            if not isinstance(fields, dict):
                raise FrameCodecError("malformed message fields")
            try:
                return cls(**{name: _from_wire(val) for name, val in fields.items()})
            except TypeError as exc:
                raise FrameCodecError(f"bad fields for {cls.__name__}: {exc}") from exc
        if tag == "tup":
            return tuple(_from_wire(item) for item in tree.get("v", ()))
        if tag == "map":
            value = tree.get("v")
            if not isinstance(value, dict):
                raise FrameCodecError("malformed map payload")
            return {key: _from_wire(val) for key, val in value.items()}
        raise FrameCodecError(f"unknown payload tag {tag!r}")
    if isinstance(tree, list):
        return [_from_wire(item) for item in tree]
    return tree


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------
class Frame(NamedTuple):
    """A decoded, authenticated frame."""

    sender: int
    payload: Any
    sent_at: float


def encode_frame(
    sender: int,
    payload: Any,
    key: bytes,
    sent_at: float = 0.0,
    codec: str = "json",
) -> bytes:
    """Encode one authenticated frame (raises :class:`FrameError` variants)."""
    tree = {"t": sent_at, "p": _to_wire(payload)}
    if codec == "json":
        codec_byte = CODEC_JSON
        body = json.dumps(tree, separators=(",", ":")).encode()
    elif codec == "msgpack":
        if not HAVE_MSGPACK:
            raise FrameCodecError("msgpack codec requested but msgpack is not installed")
        codec_byte = CODEC_MSGPACK
        body = msgpack.packb(tree, use_bin_type=True)
    else:
        raise FrameCodecError(f"unknown codec {codec!r}")
    if len(body) > MAX_BODY_BYTES:
        raise OversizedFrameError(
            f"encoded body is {len(body)} bytes (max {MAX_BODY_BYTES})"
        )
    header = _HEADER.pack(MAGIC, codec_byte, sender & 0xFFFFFFFF, len(body))
    tag = hmac.new(key, header + body, hashlib.sha256).digest()[:TAG_BYTES]
    return header + body + tag


def decode_frame(data: bytes, key: bytes) -> Frame:
    """Decode and authenticate one frame (raises :class:`FrameError` variants)."""
    if len(data) < MIN_FRAME_BYTES:
        raise TruncatedFrameError(
            f"frame is {len(data)} bytes, shorter than the {MIN_FRAME_BYTES}-byte minimum"
        )
    magic, codec_byte, sender, body_len = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise FrameCodecError(f"bad magic {magic!r}")
    if body_len > MAX_BODY_BYTES:
        raise OversizedFrameError(
            f"declared body of {body_len} bytes exceeds the {MAX_BODY_BYTES} cap"
        )
    expected = HEADER_BYTES + body_len + TAG_BYTES
    if len(data) < expected:
        raise TruncatedFrameError(
            f"frame is {len(data)} bytes but declares {expected}"
        )
    if len(data) > expected:
        raise FrameCodecError(f"{len(data) - expected} trailing bytes after the tag")
    body = data[HEADER_BYTES : HEADER_BYTES + body_len]
    tag = data[HEADER_BYTES + body_len :]
    good = hmac.new(key, data[:HEADER_BYTES] + body, hashlib.sha256).digest()[:TAG_BYTES]
    if not hmac.compare_digest(tag, good):
        raise FrameAuthError("authentication tag mismatch")
    # One umbrella: *any* failure while interpreting an authenticated body
    # (codec parse, envelope shape, payload tags, a malformed "t") must
    # surface as FrameCodecError -- the transports catch FrameError only,
    # and a leaked ValueError would abort an event-loop reader mid-batch.
    try:
        if codec_byte == CODEC_JSON:
            tree = json.loads(body.decode())
        elif codec_byte == CODEC_MSGPACK:
            if not HAVE_MSGPACK:
                raise FrameCodecError("msgpack frame received but msgpack is not installed")
            tree = msgpack.unpackb(body, raw=False)
        else:
            raise FrameCodecError(f"unknown codec byte {codec_byte!r}")
        if not isinstance(tree, dict) or "t" not in tree or "p" not in tree:
            raise FrameCodecError("body is not a framed envelope")
        sent_at = tree["t"]
        if isinstance(sent_at, bool) or not isinstance(sent_at, (int, float)):
            raise FrameCodecError(f"non-numeric sent_at {sent_at!r}")
        payload = _from_wire(tree["p"])
    except FrameError:
        raise
    except Exception as exc:
        raise FrameCodecError(f"undecodable body: {exc}") from exc
    return Frame(sender=sender, payload=payload, sent_at=float(sent_at))


__all__ = [
    "Frame",
    "FrameAuthError",
    "FrameCodecError",
    "FrameError",
    "HAVE_MSGPACK",
    "HEADER_BYTES",
    "MAGIC",
    "MAX_BODY_BYTES",
    "MIN_FRAME_BYTES",
    "OversizedFrameError",
    "TAG_BYTES",
    "TruncatedFrameError",
    "decode_frame",
    "derive_key",
    "encode_frame",
]
