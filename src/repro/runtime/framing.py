"""Shared wire framing for the byte-level runtime backends.

The sim backend hands Python objects straight to receivers, but the asyncio
and socket backends move *bytes*: every message is one self-delimiting,
authenticated frame.  Keeping the encode/decode pair here -- used verbatim
by :class:`repro.runtime.aio.AsyncioTransport` and
:class:`repro.runtime.socket_host.SocketTransport` -- means both non-sim
transports agree on the format byte for byte, and the hardening tests in
``tests/test_framing.py`` cover them both at once.

Frame layout (big-endian)::

    magic   2 bytes   b"SB"
    codec   1 byte    b"J"/b"M" single frame, b"j"/b"m" batch frame
    sender  4 bytes   claimed sender id
    length  4 bytes   body length in bytes (<= MAX_BODY_BYTES)
    body    N bytes   single: codec({"t": sent_at, "p": <tagged payload>})
                      batch:  1+ entries of [u16 sublen][single-frame body]
    tag     16 bytes  HMAC-SHA256(key, header || body), truncated

The tag covers the header, so a frame with a forged ``sender`` fails
authentication outright -- this is what implements the model's Definition 2
("the receiver always learns the true sender") over a fabric where anyone
can transmit a datagram.  The key is a per-cluster shared secret: it defends
sender identity against *network-level* spoofing, which is the model's
guarantee; it does not model key compromise (a Byzantine process holds the
cluster key but only ever frames its own id through this API).

A BATCH frame (lowercase codec byte) coalesces several messages from one
sender to one receiver into a single datagram: one header, one tag, and
``[u16 length][envelope]`` entries back to back.  The whole batch
authenticates or none of it does, and a datagram whose interior is
malformed is rejected wholesale -- partial delivery would break the
per-sender FIFO contract the transports promise.

Payloads are the protocol message dataclasses, scalars, tuples and the
``BOTTOM`` sentinel; anything else is refused at encode time rather than
silently mangled.

Two codecs share that payload model.  JSON is the no-dependency fallback;
msgpack is the preferred codec and is *always* available: the C extension
is used when installed, otherwise the vendored subset in
:mod:`repro.runtime.mpack` produces interoperable bytes.  The hot path
never builds the tagged tree at all -- per-message-class byte skeletons
(:data:`_MSG_SKELETONS`) let :class:`FrameEncoder` pack dataclass fields
straight into a preallocated ``bytearray``, and the HMAC is computed over
a ``memoryview`` of that same buffer, so a steady-state send does zero
intermediate ``bytes`` concatenations.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import json
import struct
from typing import Any, Callable, NamedTuple

from repro.core.messages import ALL_MESSAGE_TYPES
from repro.core.params import BOTTOM
from repro.runtime import mpack
from repro.runtime.mpack import MpackError

try:  # optional accelerator: the C extension decodes ~10x faster than mpack
    import msgpack  # type: ignore

    HAVE_MSGPACK = True
except ImportError:  # pragma: no cover - exercised on images without the wheel
    msgpack = None
    HAVE_MSGPACK = False

#: Which implementation backs the msgpack codec ("c" extension or the
#: vendored pure-Python subset).  The wire bytes mean the same thing either
#: way; this only affects speed and is surfaced for diagnostics/benchmarks.
MSGPACK_IMPL = "c" if HAVE_MSGPACK else "py"

MAGIC = b"SB"
CODEC_JSON = b"J"
CODEC_MSGPACK = b"M"
#: Batch (coalesced) frames reuse the codec letter in lowercase.
CODEC_JSON_BATCH = b"j"
CODEC_MSGPACK_BATCH = b"m"
#: Bound on the encoded body.  Protocol messages are tens of bytes; the cap
#: keeps every frame inside a single localhost UDP datagram with room to
#: spare and turns a runaway payload into a loud error instead of silent
#: fragmentation.  Batch frames obey the same cap on their *total* body, so
#: coalescing never produces a datagram a single-frame peer could not.
MAX_BODY_BYTES = 16384
TAG_BYTES = 16
_HEADER = struct.Struct(">2s c I I")
HEADER_BYTES = _HEADER.size
_HEADER_PLACEHOLDER = bytes(HEADER_BYTES)
_BATCH_LEN = struct.Struct(">H")
#: Smallest well-formed frame (empty body is still invalid JSON, but the
#: *structural* minimum is header + tag).
MIN_FRAME_BYTES = HEADER_BYTES + TAG_BYTES

_MESSAGE_CLASSES = {cls.__name__: cls for cls in ALL_MESSAGE_TYPES}


class FrameError(Exception):
    """Base class for every framing failure."""


class TruncatedFrameError(FrameError):
    """The byte string is shorter than its header promises."""


class OversizedFrameError(FrameError):
    """The body exceeds :data:`MAX_BODY_BYTES` (encode- or decode-side)."""


class FrameAuthError(FrameError):
    """The authentication tag does not verify (includes forged senders)."""


class FrameCodecError(FrameError):
    """Bad magic, unknown codec, or an undecodable/unencodable payload."""


def derive_key(material: str) -> bytes:
    """Derive a 32-byte frame key from a seed string (per-cluster secret)."""
    return hashlib.sha256(f"repro-frame-key:{material}".encode()).digest()


# ---------------------------------------------------------------------------
# Payload tagging: protocol objects <-> codec-neutral trees
# ---------------------------------------------------------------------------
def _to_wire(obj: Any) -> Any:
    if obj is BOTTOM:
        return {"__": "bot"}
    if isinstance(obj, ALL_MESSAGE_TYPES):
        return {
            "__": "msg",
            "k": type(obj).__name__,
            "f": {
                field.name: _to_wire(getattr(obj, field.name))
                for field in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, tuple):
        return {"__": "tup", "v": [_to_wire(item) for item in obj]}
    if isinstance(obj, list):
        return [_to_wire(item) for item in obj]
    if isinstance(obj, dict):
        for key in obj:
            if not isinstance(key, str):
                raise FrameCodecError(f"non-string dict key {key!r}")
        return {"__": "map", "v": {key: _to_wire(val) for key, val in obj.items()}}
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise FrameCodecError(f"payload type {type(obj).__name__!r} is not wire-safe")


def _from_wire(tree: Any) -> Any:
    if isinstance(tree, dict):
        tag = tree.get("__")
        if tag == "bot":
            return BOTTOM
        if tag == "msg":
            cls = _MESSAGE_CLASSES.get(tree.get("k"))
            if cls is None:
                raise FrameCodecError(f"unknown message class {tree.get('k')!r}")
            fields = tree.get("f")
            if not isinstance(fields, dict):
                raise FrameCodecError("malformed message fields")
            try:
                return cls(**{name: _from_wire(val) for name, val in fields.items()})
            except TypeError as exc:
                raise FrameCodecError(f"bad fields for {cls.__name__}: {exc}") from exc
        if tag == "tup":
            return tuple(_from_wire(item) for item in tree.get("v", ()))
        if tag == "map":
            value = tree.get("v")
            if not isinstance(value, dict):
                raise FrameCodecError("malformed map payload")
            return {key: _from_wire(val) for key, val in value.items()}
        raise FrameCodecError(f"unknown payload tag {tag!r}")
    if isinstance(tree, list):
        return [_from_wire(item) for item in tree]
    return tree


# ---------------------------------------------------------------------------
# Direct msgpack packing: dataclass fields -> wire bytes, no tree build
# ---------------------------------------------------------------------------
def _pack_prefix(*parts: Any) -> bytes:
    buf = bytearray()
    for part in parts:
        if isinstance(part, int):
            buf.append(part)
        else:
            mpack.pack_str_into(buf, part)
    return bytes(buf)


def _build_skeleton(cls: type) -> tuple[bytes, tuple[tuple[bytes, str], ...]]:
    """Precompile the constant msgpack bytes of one message class.

    ``{"__": "msg", "k": <name>, "f": {...}}`` is identical for every
    instance except the field *values*, so the map headers, tag strings,
    class name, and field-name keys collapse into constants built once at
    import.  Packing an instance is then prefix + per-field key + value.
    """
    fields = dataclasses.fields(cls)
    if len(fields) >= 16:  # pragma: no cover - message classes have <=4 fields
        raise AssertionError(f"{cls.__name__} has too many fields for a fixmap")
    prefix = _pack_prefix(0x83, "__", "msg", "k", cls.__name__, "f", 0x80 | len(fields))
    keys = tuple((_pack_prefix(field.name), field.name) for field in fields)
    return prefix, keys


_MSG_SKELETONS = {cls: _build_skeleton(cls) for cls in ALL_MESSAGE_TYPES}
_BOT_BODY = _pack_prefix(0x81, "__", "bot")
_TUP_PREFIX = _pack_prefix(0x82, "__", "tup", "v")
_MAP_PREFIX = _pack_prefix(0x82, "__", "map", "v")
#: fixmap(2) + fixstr "t"; the float64 sent_at and fixstr "p" follow.
_ENVELOPE_PREFIX = _pack_prefix(0x82, "t")
_ENVELOPE_T = struct.Struct(">Bd")
_ENVELOPE_P = _pack_prefix("p")


def _pack_count_header(buf: bytearray, count: int, fix: int, tag16: int, tag32: int) -> None:
    if count < 16:
        buf.append(fix | count)
    elif count < 65536:
        buf += struct.pack(">BH", tag16, count)
    else:
        buf += struct.pack(">BI", tag32, count)


def _pack_payload_into(buf: bytearray, obj: Any) -> None:
    if obj is BOTTOM:
        buf += _BOT_BODY
        return
    skeleton = _MSG_SKELETONS.get(obj.__class__)
    if skeleton is not None:
        prefix, fields = skeleton
        buf += prefix
        for key_bytes, name in fields:
            buf += key_bytes
            _pack_payload_into(buf, getattr(obj, name))
        return
    if isinstance(obj, tuple):
        buf += _TUP_PREFIX
        _pack_count_header(buf, len(obj), 0x90, 0xDC, 0xDD)
        for item in obj:
            _pack_payload_into(buf, item)
        return
    if isinstance(obj, list):
        _pack_count_header(buf, len(obj), 0x90, 0xDC, 0xDD)
        for item in obj:
            _pack_payload_into(buf, item)
        return
    if isinstance(obj, dict):
        buf += _MAP_PREFIX
        _pack_count_header(buf, len(obj), 0x80, 0xDE, 0xDF)
        for key, val in obj.items():
            if not isinstance(key, str):
                raise FrameCodecError(f"non-string dict key {key!r}")
            mpack.pack_str_into(buf, key)
            _pack_payload_into(buf, val)
        return
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        mpack.pack_into(buf, obj)
        return
    if isinstance(obj, ALL_MESSAGE_TYPES):  # subclass of a message dataclass
        mpack.pack_into(buf, _to_wire(obj))
        return
    raise FrameCodecError(f"payload type {type(obj).__name__!r} is not wire-safe")


# ---------------------------------------------------------------------------
# Codec registry
# ---------------------------------------------------------------------------
def _json_encode_body_into(buf: bytearray, payload: Any, sent_at: float) -> None:
    tree = {"t": sent_at, "p": _to_wire(payload)}
    buf += json.dumps(tree, separators=(",", ":")).encode()


def _json_decode_body(body) -> Any:
    return json.loads(bytes(body))


def _msgpack_encode_body_into(buf: bytearray, payload: Any, sent_at: float) -> None:
    buf += _ENVELOPE_PREFIX
    buf += _ENVELOPE_T.pack(0xCB, sent_at)
    buf += _ENVELOPE_P
    try:
        _pack_payload_into(buf, payload)
    except MpackError as exc:
        raise FrameCodecError(str(exc)) from exc


def _msgpack_decode_body(body) -> Any:
    if HAVE_MSGPACK:
        return msgpack.unpackb(body, raw=False)
    return mpack.unpackb(body)


class WireCodec(NamedTuple):
    """One entry in the codec registry.

    ``encode_body_into`` appends the envelope bytes for one message to a
    caller-owned buffer; ``decode_body`` parses a body (bytes-like, usually
    a ``memoryview``) back into the codec-neutral tree.  ``byte`` and
    ``batch_byte`` are the wire codec bytes for single and coalesced frames.
    """

    name: str
    byte: bytes
    batch_byte: bytes
    encode_body_into: Callable[[bytearray, Any, float], None]
    decode_body: Callable[[Any], Any]


CODECS: dict[str, WireCodec] = {
    "json": WireCodec("json", CODEC_JSON, CODEC_JSON_BATCH,
                      _json_encode_body_into, _json_decode_body),
    "msgpack": WireCodec("msgpack", CODEC_MSGPACK, CODEC_MSGPACK_BATCH,
                         _msgpack_encode_body_into, _msgpack_decode_body),
}
#: codec byte -> (codec name, is_batch); decode dispatches on the received
#: byte, so a json-configured node still understands msgpack frames -- the
#: codec is per-frame negotiated, not cluster-fixed.
CODEC_BYTES: dict[bytes, tuple[str, bool]] = {}
for _codec in CODECS.values():
    CODEC_BYTES[_codec.byte] = (_codec.name, False)
    CODEC_BYTES[_codec.batch_byte] = (_codec.name, True)
#: The codec transports use when none is requested.  msgpack: smaller
#: bodies, and the skeleton packer beats json.dumps + tree building even
#: without the C extension.
PREFERRED_CODEC = "msgpack"


def resolve_codec(name: str | None) -> WireCodec:
    """Look up a codec by name (``None`` -> :data:`PREFERRED_CODEC`)."""
    codec = CODECS.get(PREFERRED_CODEC if name is None else name)
    if codec is None:
        raise FrameCodecError(f"unknown codec {name!r}")
    return codec


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------
class Frame(NamedTuple):
    """A decoded, authenticated frame."""

    sender: int
    payload: Any
    sent_at: float


class FrameEncoder:
    """Per-transport encoder: preallocated buffers, primed HMAC, one codec.

    The frame-assembly methods (:meth:`encode`, :meth:`frame`,
    :meth:`frame_batch`) return the encoder's *reused* ``bytearray``: valid
    until the next call, so the caller must transmit or copy before
    encoding again.  That is the zero-alloc contract -- steady state does
    no per-frame buffer allocation, no ``header + body`` concatenation
    (the header is packed in place), and no ``bytes`` copy for the HMAC
    (the tag is computed over a ``memoryview`` of the same buffer from a
    pre-keyed HMAC context, skipping the per-frame key schedule).
    """

    __slots__ = ("_buf", "_body_buf", "_codec", "_hmac", "_key")

    def __init__(self, key: bytes, codec: str | None = None) -> None:
        self._codec = resolve_codec(codec)
        self._key = key
        self._hmac = hmac.new(key, digestmod=hashlib.sha256)
        self._buf = bytearray()
        self._body_buf = bytearray()

    @property
    def codec(self) -> str:
        return self._codec.name

    def encode_body(self, payload: Any, sent_at: float = 0.0) -> bytes:
        """Encode one message envelope to stable bytes (queueable)."""
        buf = self._body_buf
        del buf[:]
        self._codec.encode_body_into(buf, payload, float(sent_at))
        if len(buf) > MAX_BODY_BYTES:
            raise OversizedFrameError(
                f"encoded body is {len(buf)} bytes (max {MAX_BODY_BYTES})"
            )
        return bytes(buf)

    def _seal(self, buf: bytearray) -> bytearray:
        digest = self._hmac.copy()
        # The context manager releases the view before the append below
        # resizes the buffer -- appending with an exported view is a
        # BufferError.
        with memoryview(buf) as view:
            digest.update(view)
        buf += digest.digest()[:TAG_BYTES]
        return buf

    def frame(self, sender: int, body: bytes) -> bytearray:
        """Assemble one single-message frame around an encoded body."""
        if len(body) > MAX_BODY_BYTES:
            raise OversizedFrameError(
                f"body is {len(body)} bytes (max {MAX_BODY_BYTES})"
            )
        buf = self._buf
        del buf[:]
        buf += _HEADER_PLACEHOLDER
        buf += body
        _HEADER.pack_into(buf, 0, MAGIC, self._codec.byte, sender & 0xFFFFFFFF, len(body))
        return self._seal(buf)

    def frame_batch(self, sender: int, bodies) -> bytearray:
        """Assemble one BATCH frame coalescing several encoded bodies."""
        if not bodies:
            raise FrameCodecError("a batch frame needs at least one body")
        buf = self._buf
        del buf[:]
        buf += _HEADER_PLACEHOLDER
        for body in bodies:
            buf += _BATCH_LEN.pack(len(body))
            buf += body
        body_len = len(buf) - HEADER_BYTES
        if body_len > MAX_BODY_BYTES:
            raise OversizedFrameError(
                f"batch body is {body_len} bytes (max {MAX_BODY_BYTES})"
            )
        _HEADER.pack_into(
            buf, 0, MAGIC, self._codec.batch_byte, sender & 0xFFFFFFFF, body_len
        )
        return self._seal(buf)

    def encode(self, sender: int, payload: Any, sent_at: float = 0.0) -> bytearray:
        """Encode one message straight into a sealed frame (fast path).

        The envelope is packed directly after the header placeholder in the
        frame buffer -- no intermediate body ``bytes`` object at all.
        """
        buf = self._buf
        del buf[:]
        buf += _HEADER_PLACEHOLDER
        self._codec.encode_body_into(buf, payload, float(sent_at))
        body_len = len(buf) - HEADER_BYTES
        if body_len > MAX_BODY_BYTES:
            raise OversizedFrameError(
                f"encoded body is {body_len} bytes (max {MAX_BODY_BYTES})"
            )
        _HEADER.pack_into(buf, 0, MAGIC, self._codec.byte, sender & 0xFFFFFFFF, body_len)
        return self._seal(buf)


class FrameBatcher:
    """Coalesce per-(receiver, sender) message bodies into BATCH frames.

    ``add`` queues an encoded body; when the queued bytes for that
    destination would exceed the datagram budget, the pending run is
    flushed first, so an emitted batch never overflows
    :data:`MAX_BODY_BYTES`.  ``flush`` (called by the transport at a
    loop-tick boundary) emits every pending run in enqueue order -- one
    plain frame for a run of one, a BATCH frame otherwise -- preserving
    per-sender FIFO: bodies for one destination always leave in ``add``
    order, inside one datagram or across consecutive ones.

    ``transmit(receiver, frame, count)`` receives the encoder's reused
    buffer and must consume it before returning.  ``flush`` snapshots the
    queue first, so a transmit callback that triggers new ``add`` calls
    (delivery handlers sending replies in-process) starts a fresh
    generation instead of mutating the one being drained.
    """

    __slots__ = ("_budget", "_encoder", "_pending", "_transmit")

    def __init__(
        self,
        encoder: FrameEncoder,
        transmit: Callable[[int, bytearray, int], None],
        budget: int = MAX_BODY_BYTES,
    ) -> None:
        if budget > MAX_BODY_BYTES:
            raise ValueError(f"budget {budget} exceeds MAX_BODY_BYTES")
        self._encoder = encoder
        self._transmit = transmit
        self._budget = budget
        # (receiver, sender) -> [queued_bytes_total, body, body, ...]
        self._pending: dict[tuple[int, int], list] = {}

    @property
    def pending(self) -> bool:
        return bool(self._pending)

    def add(self, receiver: int, sender: int, body: bytes) -> None:
        cost = len(body) + _BATCH_LEN.size
        key = (receiver, sender)
        run = self._pending.get(key)
        if run is not None and run[0] + cost > self._budget:
            del self._pending[key]
            self._emit(key, run)
            run = None
        if run is None:
            self._pending[key] = [cost, body]
        else:
            run[0] += cost
            run.append(body)

    def flush(self) -> None:
        while self._pending:
            snapshot = self._pending
            self._pending = {}
            for key, run in snapshot.items():
                self._emit(key, run)

    def clear(self) -> None:
        """Drop everything queued (transport close path)."""
        self._pending.clear()

    def _emit(self, key: tuple[int, int], run: list) -> None:
        receiver, sender = key
        if len(run) == 2:  # [size, body]: no coalescing win, plain frame
            frame = self._encoder.frame(sender, run[1])
        else:
            frame = self._encoder.frame_batch(sender, run[1:])
        self._transmit(receiver, frame, len(run) - 1)


def encode_frame(
    sender: int,
    payload: Any,
    key: bytes,
    sent_at: float = 0.0,
    codec: str = "json",
) -> bytes:
    """Encode one authenticated frame (raises :class:`FrameError` variants).

    This is the simple reference path -- fresh buffers, fresh HMAC key
    schedule, tree-building encode -- kept as the module-level convenience
    API and as the baseline the wire benchmarks measure
    :class:`FrameEncoder` against.  Transports use :class:`FrameEncoder`.
    """
    tree = {"t": sent_at, "p": _to_wire(payload)}
    spec = resolve_codec(codec)
    if spec.name == "json":
        body = json.dumps(tree, separators=(",", ":")).encode()
    elif HAVE_MSGPACK:
        body = msgpack.packb(tree, use_bin_type=True)
    else:
        try:
            body = mpack.packb(tree)
        except MpackError as exc:
            raise FrameCodecError(str(exc)) from exc
    if len(body) > MAX_BODY_BYTES:
        raise OversizedFrameError(
            f"encoded body is {len(body)} bytes (max {MAX_BODY_BYTES})"
        )
    header = _HEADER.pack(MAGIC, spec.byte, sender & 0xFFFFFFFF, len(body))
    tag = hmac.new(key, header + body, hashlib.sha256).digest()[:TAG_BYTES]
    return header + body + tag


def encode_batch_frame(
    sender: int,
    payloads,
    key: bytes,
    sent_at: float = 0.0,
    codec: str | None = None,
) -> bytes:
    """Encode several payloads into one BATCH frame (test/tool convenience)."""
    encoder = FrameEncoder(key, codec)
    bodies = [encoder.encode_body(payload, sent_at) for payload in payloads]
    return bytes(encoder.frame_batch(sender, bodies))


def _decode_outer(data, key: bytes) -> tuple[WireCodec, bool, int, memoryview]:
    """Validate structure + tag; return (codec, is_batch, sender, body view)."""
    size = len(data)
    if size < MIN_FRAME_BYTES:
        raise TruncatedFrameError(
            f"frame is {size} bytes, shorter than the {MIN_FRAME_BYTES}-byte minimum"
        )
    magic, codec_byte, sender, body_len = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise FrameCodecError(f"bad magic {magic!r}")
    if body_len > MAX_BODY_BYTES:
        raise OversizedFrameError(
            f"declared body of {body_len} bytes exceeds the {MAX_BODY_BYTES} cap"
        )
    expected = HEADER_BYTES + body_len + TAG_BYTES
    if size < expected:
        raise TruncatedFrameError(f"frame is {size} bytes but declares {expected}")
    if size > expected:
        raise FrameCodecError(f"{size - expected} trailing bytes after the tag")
    view = memoryview(data)
    good = hmac.new(key, view[: HEADER_BYTES + body_len], hashlib.sha256)
    if not hmac.compare_digest(view[HEADER_BYTES + body_len :], good.digest()[:TAG_BYTES]):
        raise FrameAuthError("authentication tag mismatch")
    entry = CODEC_BYTES.get(codec_byte)
    if entry is None:
        raise FrameCodecError(f"unknown codec byte {codec_byte!r}")
    codec_name, is_batch = entry
    return CODECS[codec_name], is_batch, sender, view[HEADER_BYTES : HEADER_BYTES + body_len]


def _decode_envelope(codec: WireCodec, body) -> tuple[float, Any]:
    # One umbrella: *any* failure while interpreting an authenticated body
    # (codec parse, envelope shape, payload tags, a malformed "t") must
    # surface as FrameCodecError -- the transports catch FrameError only,
    # and a leaked ValueError would abort an event-loop reader mid-batch.
    try:
        tree = codec.decode_body(body)
        if not isinstance(tree, dict) or "t" not in tree or "p" not in tree:
            raise FrameCodecError("body is not a framed envelope")
        sent_at = tree["t"]
        if isinstance(sent_at, bool) or not isinstance(sent_at, (int, float)):
            raise FrameCodecError(f"non-numeric sent_at {sent_at!r}")
        payload = _from_wire(tree["p"])
    except FrameError:
        raise
    except Exception as exc:
        raise FrameCodecError(f"undecodable body: {exc}") from exc
    return float(sent_at), payload


def decode_frame(data, key: bytes) -> Frame:
    """Decode and authenticate one single-message frame.

    Raises :class:`FrameError` variants; a BATCH frame is refused here --
    transports use :func:`decode_frames`, which handles both shapes.
    """
    codec, is_batch, sender, body = _decode_outer(data, key)
    if is_batch:
        raise FrameCodecError("batch frame passed to single-frame decode")
    sent_at, payload = _decode_envelope(codec, body)
    return Frame(sender=sender, payload=payload, sent_at=sent_at)


def decode_frames(data, key: bytes) -> tuple[Frame, ...]:
    """Decode one datagram into its frames (single -> 1, batch -> N).

    A batch decodes atomically: if any entry is malformed the whole
    datagram raises (and the transport counts one rejected datagram),
    never a prefix of its messages -- partial delivery would violate
    per-sender FIFO.
    """
    codec, is_batch, sender, body = _decode_outer(data, key)
    if not is_batch:
        sent_at, payload = _decode_envelope(codec, body)
        return (Frame(sender=sender, payload=payload, sent_at=sent_at),)
    size = len(body)
    if size == 0:
        raise FrameCodecError("empty batch frame")
    frames = []
    pos = 0
    while pos < size:
        if pos + _BATCH_LEN.size > size:
            raise FrameCodecError("truncated batch entry header")
        (sub_len,) = _BATCH_LEN.unpack_from(body, pos)
        pos += _BATCH_LEN.size
        if pos + sub_len > size:
            raise FrameCodecError("batch entry overruns the frame body")
        sent_at, payload = _decode_envelope(codec, body[pos : pos + sub_len])
        frames.append(Frame(sender=sender, payload=payload, sent_at=sent_at))
        pos += sub_len
    return tuple(frames)


__all__ = [
    "CODECS",
    "CODEC_BYTES",
    "CODEC_JSON",
    "CODEC_JSON_BATCH",
    "CODEC_MSGPACK",
    "CODEC_MSGPACK_BATCH",
    "Frame",
    "FrameAuthError",
    "FrameBatcher",
    "FrameCodecError",
    "FrameEncoder",
    "FrameError",
    "HAVE_MSGPACK",
    "HEADER_BYTES",
    "MAGIC",
    "MAX_BODY_BYTES",
    "MIN_FRAME_BYTES",
    "MSGPACK_IMPL",
    "OversizedFrameError",
    "PREFERRED_CODEC",
    "TAG_BYTES",
    "TruncatedFrameError",
    "WireCodec",
    "decode_frame",
    "decode_frames",
    "derive_key",
    "encode_batch_frame",
    "encode_frame",
    "resolve_codec",
]
