"""Runtime backends behind the sans-I/O protocol host API.

* :mod:`repro.runtime.api` -- the :class:`~repro.runtime.api.ProtocolHost`
  interface the protocol core compiles against (the only module ``repro.core``
  may import outside itself and ``repro.node.msglog``).
* :mod:`repro.runtime.sim_host` -- the discrete-event backend (bit-identical
  adapter over ``repro.sim``).
* :mod:`repro.runtime.aio` -- the asyncio backend: real coroutines,
  wall-clock-scaled timers, in-process transport.
* :mod:`repro.runtime.socket_host` -- the real-socket backend: UDP
  datagrams on localhost, one OS process per node.
* :mod:`repro.runtime.framing` -- the authenticated wire format shared by
  both non-sim transports.

The backends are imported lazily so pulling in the API (or the sim adapter)
never drags the asyncio machinery along, and vice versa.
"""

from repro.runtime.api import (
    ALWAYS_ENABLED,
    Delivery,
    ProtocolHost,
    RandomStream,
    TimerHandle,
    TimerRegistry,
    TraceSink,
    Transport,
)

_LAZY = {
    "SimHost": "repro.runtime.sim_host",
    "NodeContext": "repro.runtime.sim_host",
    "AsyncioHost": "repro.runtime.aio",
    "AsyncioTransport": "repro.runtime.aio",
    "AsyncioCluster": "repro.runtime.aio",
    "run_agreement_async": "repro.runtime.aio",
    "SocketHost": "repro.runtime.socket_host",
    "SocketTransport": "repro.runtime.socket_host",
    "SocketCluster": "repro.runtime.socket_host",
    "run_agreement_socket": "repro.runtime.socket_host",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "ALWAYS_ENABLED",
    "AsyncioCluster",
    "AsyncioHost",
    "AsyncioTransport",
    "Delivery",
    "NodeContext",
    "ProtocolHost",
    "RandomStream",
    "SimHost",
    "SocketCluster",
    "SocketHost",
    "SocketTransport",
    "TimerHandle",
    "TimerRegistry",
    "TraceSink",
    "Transport",
    "run_agreement_async",
    "run_agreement_socket",
]
