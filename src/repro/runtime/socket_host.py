"""SocketHost: the real-socket backend of the sans-I/O host API.

The third backend: the exact :class:`~repro.core.agreement.ProtocolNode`
code the simulator drives, exchanging **real UDP datagrams** on localhost,
with each node in its own OS process.  This is the closest the reproduction
gets to a deployment: real bytes, real kernel socket buffers, real process
scheduling -- and the same :class:`~repro.runtime.api.ProtocolHost` surface,
so not a line of protocol code changes.

Pieces
------
* :class:`SocketTransport` -- one non-blocking UDP socket per node, wired
  into the asyncio loop via ``loop.add_reader``.  Every message is one
  authenticated frame (:mod:`repro.runtime.framing`); malformed or
  unauthenticated datagrams are counted and dropped, never delivered.  The
  sim's :class:`~repro.net.delivery.DeliveryPolicy` objects are reused for
  seeded per-copy delay/drop draws, *injected at the sender*: the policy is
  consulted before the datagram leaves, a drop means it is never
  transmitted, and a delay holds the ``sendto`` back on the sender's loop.
* :class:`SocketHost` -- wall-clock timers scaled by ``time_scale``
  (seconds per protocol unit), sharing one epoch across all nodes so
  ``now()`` readings are mutually consistent.  A closed host refuses new
  timers, so registries drain to zero at teardown.
* :class:`SocketCluster` / :func:`run_agreement_socket` -- parent-side
  orchestration: spawns one process per node (``multiprocessing`` spawn
  context), collects each child's UDP port over its pipe, distributes the
  address book + shared epoch + cluster frame key, streams decisions back
  over the results pipes, and tears everything down with hard timeouts so
  a hung child is killed, not waited on.

Determinism caveat
------------------
Like the asyncio backend, runs are **not** replayable: the seeded draws
(delays, Byzantine choices) are deterministic, but arrival interleaving is
at the mercy of the kernel scheduler and the network stack.  Use the sim
backend for replays.  Keep ``time_scale`` generous -- the default maps
``d`` to 50 ms, leaving process-scheduling stalls well inside the protocol
windows.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import multiprocessing.connection
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.agreement import Decision, ProtocolNode
from repro.core.messages import Value
from repro.core.params import ProtocolParams
from repro.net.delivery import DeliveryPolicy, UniformDelay
from repro.net.network import Envelope
from repro.runtime.aio import AsyncioHost
from repro.runtime.framing import (
    FrameError,
    decode_frame,
    derive_key,
    encode_frame,
)
from repro.sim.rand import RandomSource
from repro.sim.trace import Tracer

#: Default wall-clock seconds per protocol time unit (d = 50 ms): UDP and
#: spawn-child scheduling latencies stay far below the protocol windows.
DEFAULT_TIME_SCALE = 0.05

#: Parent-side grace for spawning children and collecting their ports.
STARTUP_TIMEOUT_S = 30.0


class SocketTransport:
    """One node's UDP endpoint: authenticated frames over real datagrams.

    ``directory`` maps node ids to ``(host, port)`` addresses.  In-process
    harnesses share one mutable dict (each transport registers itself on
    construction); cluster children receive the full address book from the
    parent.  The transport also owns the shared clock axis -- ``now()`` is
    wall clock against ``epoch_wall``, scaled by ``time_scale`` -- so hosts
    bind their clock straight to it, exactly like the asyncio backend.
    """

    def __init__(
        self,
        node_id: int,
        auth_key: bytes,
        time_scale: float = DEFAULT_TIME_SCALE,
        epoch_wall: Optional[float] = None,
        directory: Optional[dict[int, tuple[str, int]]] = None,
        sock: Optional[socket.socket] = None,
        policy: Optional[DeliveryPolicy] = None,
        rand: Optional[RandomSource] = None,
        tracer: Optional[Tracer] = None,
        codec: str = "json",
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale!r}")
        self.node_id = node_id
        self.auth_key = auth_key
        self.time_scale = time_scale
        self.codec = codec
        self.loop = asyncio.get_running_loop()
        if sock is None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.bind(("127.0.0.1", 0))
        sock.setblocking(False)
        self.sock = sock
        self.address: tuple[str, int] = sock.getsockname()
        self.directory = directory if directory is not None else {}
        self.directory[node_id] = self.address
        # Local wall epoch -> per-process monotonic epoch: readings stay
        # monotone within the process while remaining (roughly, to process
        # scheduling) consistent across every process sharing the epoch.
        if epoch_wall is None:
            epoch_wall = time.time()
        self.epoch_wall = epoch_wall
        self._epoch_mono = time.monotonic() - (time.time() - epoch_wall)
        self._policy = policy
        self._rand = rand if rand is not None else RandomSource(0, f"socket/net/{node_id}")
        self._tracer = tracer
        self._receiver: Optional[Callable[[Envelope], None]] = None
        self._pending_sends: list[asyncio.TimerHandle] = []
        self._closed = False
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        #: Datagrams refused at the receiver: truncated, oversized, garbage,
        #: or failing authentication.  Never delivered, always counted.
        self.rejected_count = 0
        self.loop.add_reader(self.sock.fileno(), self._on_readable)

    # ------------------------------------------------------------------
    # Time (shared axis for every transport on this epoch)
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current protocol-local time (wall seconds since epoch / scale)."""
        return (time.monotonic() - self._epoch_mono) / self.time_scale

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(self, node_id: int, receiver: Callable[[Envelope], None]) -> None:
        """Attach the local node's message handler (one node per socket)."""
        if node_id != self.node_id:
            raise ValueError(
                f"transport for node {self.node_id} cannot register node {node_id}"
            )
        if self._receiver is not None:
            raise ValueError(f"node {node_id} already registered")
        self._receiver = receiver

    @property
    def node_ids(self) -> list[int]:
        return sorted(self.directory)

    # ------------------------------------------------------------------
    # Sending (policy consulted at the sender, before any byte moves)
    # ------------------------------------------------------------------
    def send(self, sender: int, receiver: int, payload: object) -> None:
        if self._closed:
            return
        if receiver not in self.directory:
            raise ValueError(f"unknown receiver {receiver}")
        self._send_copy(sender, receiver, payload, self._encode(sender, payload))

    def broadcast(self, sender: int, payload: object) -> None:
        """n point-to-point datagrams, one per known node (self included).

        The frame is encoded and HMAC'd **once** for the whole wave (one
        ``sent_at`` stamp, matching the sim network's single timestamp per
        broadcast); only the per-copy policy draw and transmit differ.
        """
        if self._closed:
            return
        frame = self._encode(sender, payload)
        for receiver in self.node_ids:
            self._send_copy(sender, receiver, payload, frame)

    def _encode(self, sender: int, payload: object) -> bytes:
        return encode_frame(
            sender, payload, self.auth_key, sent_at=self.now(), codec=self.codec
        )

    def _send_copy(
        self, sender: int, receiver: int, payload: object, frame: bytes
    ) -> None:
        self.sent_count += 1
        tracer = self._tracer
        if tracer is not None:
            if tracer.enabled:
                tracer.record(
                    self.now(), sender, "send", receiver=receiver, payload=payload
                )
            else:
                tracer.bump("send")
        delay_units = 0.0
        if self._policy is not None:
            decision = self._policy.decide(sender, receiver, payload, self._rand)
            if decision.drop:
                self.dropped_count += 1
                return
            delay_units = decision.delay
        if delay_units <= 0.0:
            self._transmit(receiver, frame)
        else:
            handle = self.loop.call_later(
                delay_units * self.time_scale, self._transmit, receiver, frame
            )
            self._pending_sends.append(handle)
            if len(self._pending_sends) > 256:
                # Compact out handles whose deadline has passed (they have
                # fired); only genuinely pending held-back sends survive to
                # be cancelled by close().
                now_loop = self.loop.time()
                self._pending_sends = [
                    h for h in self._pending_sends if h.when() > now_loop
                ]

    def _transmit(self, receiver: int, frame: bytes) -> None:
        if self._closed:
            return
        try:
            self.sock.sendto(frame, self.directory[receiver])
        except OSError:
            # Localhost UDP can still fail transiently (full socket buffer);
            # the model permits loss only through the policy, but a lost
            # datagram is indistinguishable from a drop to the receiver, and
            # the resend logic covers it.  Count it as a drop.
            self.dropped_count += 1

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _on_readable(self) -> None:
        while True:
            try:
                data, _addr = self.sock.recvfrom(65536)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            self._handle_datagram(data)

    def _handle_datagram(self, data: bytes) -> None:
        try:
            frame = decode_frame(data, self.auth_key)
        except FrameError:
            self.rejected_count += 1
            if self._tracer is not None:
                self._tracer.bump("frame_rejected")
            return
        receiver = self._receiver
        if receiver is None:
            self.rejected_count += 1
            return
        self.delivered_count += 1
        now = self.now()
        envelope = Envelope(
            sender=frame.sender,
            receiver=self.node_id,
            payload=frame.payload,
            sent_at=frame.sent_at,
            delivered_at=now,
        )
        tracer = self._tracer
        if tracer is not None:
            if tracer.enabled:
                tracer.record(
                    now,
                    self.node_id,
                    "deliver",
                    sender=frame.sender,
                    payload=frame.payload,
                )
            else:
                tracer.bump("deliver")
        receiver(envelope)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Cancel held-back sends, detach the reader, close the socket."""
        if self._closed:
            return
        self._closed = True
        for handle in self._pending_sends:
            handle.cancel()
        self._pending_sends.clear()
        try:
            self.loop.remove_reader(self.sock.fileno())
        except (ValueError, OSError):
            pass
        self.sock.close()


class SocketHost(AsyncioHost):
    """One node's :class:`~repro.runtime.api.ProtocolHost` over UDP sockets.

    Everything host-side is shared with :class:`~repro.runtime.aio.
    AsyncioHost` -- wall-clock timers through ``loop.call_later`` scaled by
    the transport's ``time_scale``, the timer registry, refusal of new
    timers once closed -- because a host only ever touches its transport's
    ``loop`` / ``time_scale`` / ``now`` / ``register`` / ``send`` /
    ``broadcast`` surface, which :class:`SocketTransport` provides.  Only
    the default randomness stream name differs (backend-tagged so draws
    never collide across backends at the same seed).
    """

    def __init__(
        self,
        node_id: int,
        transport: SocketTransport,
        params: Optional[ProtocolParams] = None,
        rand: Optional[RandomSource] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if rand is None:
            rand = RandomSource(0, f"socket/host/{node_id}")
        super().__init__(node_id, transport, params=params, rand=rand, tracer=tracer)


# ---------------------------------------------------------------------------
# Child-process side
# ---------------------------------------------------------------------------
def _default_policy(params: ProtocolParams) -> DeliveryPolicy:
    # Leave headroom under delta: the kernel and scheduler add their own
    # latency on top of the drawn delay, and the total must stay below d.
    return UniformDelay(0.05 * params.delta, 0.5 * params.delta)


async def _child_run(
    cfg: dict, conn, sock: socket.socket, peers: dict, epoch_wall: float, key: bytes
) -> None:
    params = ProtocolParams(
        n=cfg["n"], f=cfg["f"], delta=cfg["delta"], rho=cfg["rho"]
    )
    node_id = cfg["node_id"]
    root = RandomSource(cfg["seed"])
    tracer = Tracer(enabled=cfg["trace"])
    transport = SocketTransport(
        node_id,
        auth_key=key,
        time_scale=cfg["time_scale"],
        epoch_wall=epoch_wall,
        directory=dict(peers),
        sock=sock,
        policy=cfg["policy"] if cfg["policy"] is not None else _default_policy(params),
        rand=root.split(f"net/{node_id}"),
        tracer=tracer,
    )
    host = SocketHost(
        node_id,
        transport,
        params=params,
        rand=root.split(f"host/{node_id}"),
        tracer=tracer,
    )
    decisions: list[Decision] = []

    def on_decision(decision: Decision) -> None:
        decisions.append(decision)
        try:
            conn.send(("decision", node_id, decision))
        except (BrokenPipeError, OSError):
            pass

    strategy = cfg["strategy"]
    if strategy is None:
        node = ProtocolNode(node_id, host, params, on_decision=on_decision)
    else:
        from repro.faults.byzantine import ByzantineNode

        if not hasattr(strategy, "install"):
            strategy = strategy(root.split(f"byz/{node_id}"))
        node = ByzantineNode(node_id, host, params, strategy)

    # The epoch sits slightly in the future, so every child is armed before
    # local time 0; the General proposes right at the epoch.
    if cfg["value"] is not None and node_id == cfg["general"] and cfg["strategy"] is None:
        host.schedule_after(max(0.0, -host.now()), lambda: node.propose(cfg["value"]))

    deadline_units = cfg["timeout_units"]
    stop = False
    while not stop:
        if host.now() >= deadline_units:
            break
        try:
            while conn.poll():
                msg = conn.recv()
                if msg[0] == "stop":
                    stop = True
        except (EOFError, OSError):
            stop = True
        if not stop:
            await asyncio.sleep(0.02)

    # Snapshot *before* close(): what teardown had to reap.  A running node
    # legitimately holds its perpetual cleanup tick plus timers for
    # still-decaying instance state, so nonzero is normal here -- it is
    # reported for observability, not gated on.  ``live_timers`` is read
    # *after* close() and must be zero: it proves close() drains the
    # registry and nothing can re-arm past it.
    timers_at_close = host.live_timer_count()
    host.close()
    transport.close()
    result = (
        (
            "result",
            node_id,
            {
                "sent": transport.sent_count,
                "delivered": transport.delivered_count,
                "dropped": transport.dropped_count,
                "rejected": transport.rejected_count,
                "live_timers": host.live_timer_count(),
                "timers_at_close": timers_at_close,
                "decisions": decisions,
                "trace_events": [
                    (ev.real_time, ev.node, ev.kind, dict(ev.detail), ev.local_time)
                    for ev in tracer.events
                ],
                "trace_counts": tracer.counts(),
            },
        )
    )
    try:
        conn.send(result)
    except (BrokenPipeError, OSError):
        # The parent gave up waiting and closed its end; the run is already
        # torn down cleanly, so exit 0 rather than dressing a slow finish
        # up as a crash.
        pass


def _socket_node_main(cfg: dict, conn) -> None:
    """Child-process entry point (module-level so spawn can import it)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        sock.bind(("127.0.0.1", 0))
        conn.send(("port", cfg["node_id"], sock.getsockname()[1]))
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # parent died during setup
            return
        if msg[0] != "start":  # parent aborted setup
            return
        _tag, peers, epoch_wall, key = msg
        asyncio.run(_child_run(cfg, conn, sock, peers, epoch_wall, key))
    finally:
        sock.close()
        conn.close()


# ---------------------------------------------------------------------------
# Parent-side orchestration
# ---------------------------------------------------------------------------
@dataclass
class SocketRunReport:
    """Everything the parent collected from one socket-cluster run."""

    correct_ids: list[int]
    byzantine_ids: list[int]
    decisions: dict[int, Decision] = field(default_factory=dict)
    sent_count: int = 0
    delivered_count: int = 0
    dropped_count: int = 0
    rejected_count: int = 0
    #: Registry population *after* each child's close(): must be 0 (close
    #: drains and refuses re-arming).
    live_timers: dict[int, int] = field(default_factory=dict)
    #: Registry population just *before* close(): what teardown reaped.  A
    #: running node holds its cleanup tick + decaying instance timers, so
    #: nonzero is normal; reported for observability, not gated.
    timers_at_close: dict[int, int] = field(default_factory=dict)
    exit_codes: dict[int, Optional[int]] = field(default_factory=dict)
    tracer: Optional[Tracer] = None

    @property
    def clean_exit(self) -> bool:
        """True iff every child exited 0 with a drained timer registry."""
        return all(code == 0 for code in self.exit_codes.values()) and all(
            count == 0 for count in self.live_timers.values()
        )


class SocketCluster:
    """An n-node cluster of OS processes exchanging UDP datagrams.

    The parent never runs protocol code: it spawns the children, brokers
    the address book, streams decisions off the results pipes, and owns
    teardown (cooperative stop first, then terminate, then kill) so no
    child can outlive a run.
    """

    def __init__(
        self,
        params: ProtocolParams,
        seed: int = 0,
        time_scale: float = DEFAULT_TIME_SCALE,
        byzantine: Optional[dict] = None,
        policy: Optional[DeliveryPolicy] = None,
        trace: bool = False,
        value: Optional[Value] = None,
        general: int = 0,
        timeout_units: Optional[float] = None,
        startup_grace_s: float = 0.35,
    ) -> None:
        byzantine = byzantine or {}
        if len(byzantine) > params.f:
            raise ValueError(f"{len(byzantine)} Byzantine nodes exceeds f={params.f}")
        self.params = params
        self.seed = seed
        self.time_scale = time_scale
        self.general = general
        self.value = value
        self.trace = trace
        self.timeout_units = (
            timeout_units if timeout_units is not None else 3.0 * params.delta_agr
        )
        self.correct_ids = [i for i in range(params.n) if i not in byzantine]
        self.byzantine_ids = sorted(byzantine)
        self._auth_key = derive_key(f"socket-cluster/{seed}")
        ctx = multiprocessing.get_context("spawn")
        self.procs: dict[int, multiprocessing.Process] = {}
        self.conns: dict[int, Any] = {}
        for node_id in range(params.n):
            parent_conn, child_conn = ctx.Pipe()
            cfg = {
                "node_id": node_id,
                "n": params.n,
                "f": params.f,
                "delta": params.delta,
                "rho": params.rho,
                "seed": seed,
                "time_scale": time_scale,
                "trace": trace,
                "policy": policy,
                "strategy": byzantine.get(node_id),
                "value": value,
                "general": general,
                "timeout_units": self.timeout_units,
            }
            proc = ctx.Process(
                target=_socket_node_main,
                args=(cfg, child_conn),
                daemon=True,
                name=f"repro-socket-node-{node_id}",
            )
            proc.start()
            child_conn.close()
            self.procs[node_id] = proc
            self.conns[node_id] = parent_conn
        self._closed = False
        self._started = False
        self._startup_grace_s = startup_grace_s

    # ------------------------------------------------------------------
    # Setup barrier: collect ports, distribute the address book
    # ------------------------------------------------------------------
    def _start_children(self) -> None:
        deadline = time.monotonic() + STARTUP_TIMEOUT_S
        peers: dict[int, tuple[str, int]] = {}
        for node_id, conn in self.conns.items():
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not conn.poll(remaining):
                raise TimeoutError(f"node {node_id} never reported its UDP port")
            tag, reported_id, port = conn.recv()
            if tag != "port" or reported_id != node_id:
                raise RuntimeError(f"unexpected setup message from node {node_id}")
            peers[node_id] = ("127.0.0.1", port)
        epoch_wall = time.time() + self._startup_grace_s
        for conn in self.conns.values():
            conn.send(("start", peers, epoch_wall, self._auth_key))
        self._started = True

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_agreement(self) -> SocketRunReport:
        """Run one agreement to completion and tear the cluster down.

        Returns the consolidated report; ``report.decisions`` holds the
        latest decision per correct node for the configured General.
        """
        if not self._started:
            self._start_children()
        report = SocketRunReport(
            correct_ids=list(self.correct_ids),
            byzantine_ids=list(self.byzantine_ids),
        )
        wall_deadline = (
            time.monotonic()
            + self._startup_grace_s
            + self.timeout_units * self.time_scale
            + 5.0
        )
        pending = dict(self.conns)
        results: dict[int, dict] = {}
        stopped = False
        while pending and time.monotonic() < wall_deadline:
            if not stopped and all(
                node_id in report.decisions for node_id in self.correct_ids
            ):
                self._send_stop()
                stopped = True
            ready = multiprocessing.connection.wait(
                list(pending.values()), timeout=0.05
            )
            for conn in ready:
                node_id = next(i for i, c in pending.items() if c is conn)
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    del pending[node_id]
                    continue
                if msg[0] == "decision":
                    _tag, sender_id, decision = msg
                    if decision.general == self.general and sender_id in self.correct_ids:
                        held = report.decisions.get(sender_id)
                        if held is None or decision.returned_real > held.returned_real:
                            report.decisions[sender_id] = decision
                elif msg[0] == "result":
                    _tag, sender_id, payload = msg
                    results[sender_id] = payload
                    del pending[node_id]
        if not stopped:
            self._send_stop()
        # Late results from children that were still tearing down.
        late_deadline = time.monotonic() + 5.0
        while pending and time.monotonic() < late_deadline:
            ready = multiprocessing.connection.wait(
                list(pending.values()), timeout=0.1
            )
            for conn in ready:
                node_id = next(i for i, c in pending.items() if c is conn)
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    del pending[node_id]
                    continue
                if msg[0] == "result":
                    results[node_id] = msg[2]
                    del pending[node_id]
        self._collect(report, results)
        return report

    def _send_stop(self) -> None:
        for conn in self.conns.values():
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass

    def _collect(self, report: SocketRunReport, results: dict[int, dict]) -> None:
        tracer = Tracer(enabled=self.trace)
        merged_events = []
        for node_id, payload in results.items():
            report.sent_count += payload["sent"]
            report.delivered_count += payload["delivered"]
            report.dropped_count += payload["dropped"]
            report.rejected_count += payload["rejected"]
            report.live_timers[node_id] = payload["live_timers"]
            report.timers_at_close[node_id] = payload["timers_at_close"]
            for decision in payload["decisions"]:
                if decision.general != self.general or node_id not in self.correct_ids:
                    continue
                held = report.decisions.get(node_id)
                if held is None or decision.returned_real > held.returned_real:
                    report.decisions[node_id] = decision
            merged_events.extend(payload["trace_events"])
            for kind, count in payload["trace_counts"].items():
                tracer.bump_many(kind, count)
        if self.trace:
            from repro.sim.trace import TraceEvent

            merged_events.sort(key=lambda ev: ev[0])
            tracer._events.extend(
                TraceEvent(rt, node, kind, detail, lt)
                for rt, node, kind, detail, lt in merged_events
            )
        report.tracer = tracer
        self.close()
        for node_id, proc in self.procs.items():
            report.exit_codes[node_id] = proc.exitcode
        missing = [i for i in self.procs if i not in results]
        for node_id in missing:
            report.live_timers.setdefault(node_id, -1)

    # ------------------------------------------------------------------
    # Teardown: no child outlives the cluster
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Join every child; escalate to terminate, then kill.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._send_stop()
        for proc in self.procs.values():
            proc.join(timeout=5.0)
        for proc in self.procs.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for proc in self.procs.values():
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
        for conn in self.conns.values():
            try:
                conn.close()
            except OSError:
                pass

    def __del__(self) -> None:  # last-resort orphan guard
        try:
            self.close()
        except Exception:
            pass


def run_agreement_socket(
    n: int = 4,
    f: int = 1,
    seed: int = 0,
    value: Value = "v",
    general: int = 0,
    byzantine: Optional[dict] = None,
    time_scale: float = DEFAULT_TIME_SCALE,
    delta: float = 1.0,
    rho: float = 0.0,
    trace: bool = False,
    timeout_units: Optional[float] = None,
    policy: Optional[DeliveryPolicy] = None,
) -> tuple[SocketRunReport, dict[int, Decision]]:
    """Spawn a socket cluster, run one agreement, tear every process down.

    Returns ``(report, latest decision per correct node)`` -- the same shape
    as :func:`repro.runtime.aio.run_agreement_async`, with the report
    standing in for the in-process cluster object.
    """
    params = ProtocolParams(n=n, f=f, delta=delta, rho=rho)
    cluster = SocketCluster(
        params,
        seed=seed,
        time_scale=time_scale,
        byzantine=byzantine,
        policy=policy,
        trace=trace,
        value=value,
        general=general,
        timeout_units=timeout_units,
    )
    try:
        report = cluster.run_agreement()
    finally:
        cluster.close()
    return report, dict(report.decisions)


__all__ = [
    "DEFAULT_TIME_SCALE",
    "SocketCluster",
    "SocketHost",
    "SocketRunReport",
    "SocketTransport",
    "run_agreement_socket",
]
