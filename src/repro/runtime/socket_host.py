"""SocketHost: the real-socket backend of the sans-I/O host API.

The third backend: the exact :class:`~repro.core.agreement.ProtocolNode`
code the simulator drives, exchanging **real UDP datagrams** on localhost,
with each node in its own OS process.  This is the closest the reproduction
gets to a deployment: real bytes, real kernel socket buffers, real process
scheduling -- and the same :class:`~repro.runtime.api.ProtocolHost` surface,
so not a line of protocol code changes.

Pieces
------
* :class:`SocketTransport` -- one non-blocking UDP socket per node, wired
  into the asyncio loop via ``loop.add_reader``.  Every message is one
  authenticated frame (:mod:`repro.runtime.framing`); malformed or
  unauthenticated datagrams are counted and dropped, never delivered.  The
  sim's :class:`~repro.net.delivery.DeliveryPolicy` objects are reused for
  seeded per-copy delay/drop draws, *injected at the sender*: the policy is
  consulted before the datagram leaves, a drop means it is never
  transmitted, and a delay holds the ``sendto`` back on the sender's loop.
* :class:`SocketHost` -- wall-clock timers scaled by ``time_scale``
  (seconds per protocol unit), sharing one epoch across all nodes so
  ``now()`` readings are mutually consistent.  A closed host refuses new
  timers, so registries drain to zero at teardown.
* :class:`SocketCluster` / :func:`run_agreement_socket` -- parent-side
  orchestration: spawns one process per node (``multiprocessing`` spawn
  context), collects each child's UDP port over its pipe, distributes the
  address book + shared epoch + cluster frame key, streams decisions back
  over the results pipes, and tears everything down with hard timeouts so
  a hung child is killed, not waited on.

Determinism caveat
------------------
Like the asyncio backend, runs are **not** replayable: the seeded draws
(delays, Byzantine choices) are deterministic, but arrival interleaving is
at the mercy of the kernel scheduler and the network stack.  Use the sim
backend for replays.  Keep ``time_scale`` generous -- the default maps
``d`` to 50 ms, leaving process-scheduling stalls well inside the protocol
windows.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import multiprocessing.connection
import os
import queue
import signal
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.agreement import Decision, ProtocolNode
from repro.core.messages import Value
from repro.core.params import ProtocolParams
from repro.net.delivery import (
    DeliveryPolicy,
    FixedDelay,
    LinkPartitionPolicy,
    UniformDelay,
)
from repro.net.network import Envelope
from repro.runtime import udp_batch
from repro.runtime.aio import AsyncioHost
from repro.runtime.framing import (
    FrameBatcher,
    FrameEncoder,
    FrameError,
    decode_frames,
    derive_key,
)
from repro.sim.rand import RandomSource
from repro.sim.trace import Tracer

#: Default wall-clock seconds per protocol time unit (d = 50 ms): UDP and
#: spawn-child scheduling latencies stay far below the protocol windows.
DEFAULT_TIME_SCALE = 0.05

#: Parent-side grace for spawning children and collecting their ports.
STARTUP_TIMEOUT_S = 30.0


class SocketTransport:
    """One node's UDP endpoint: authenticated frames over real datagrams.

    ``directory`` maps node ids to ``(host, port)`` addresses.  In-process
    harnesses share one mutable dict (each transport registers itself on
    construction); cluster children receive the full address book from the
    parent.  The transport also owns the shared clock axis -- ``now()`` is
    wall clock against ``epoch_wall``, scaled by ``time_scale`` -- so hosts
    bind their clock straight to it, exactly like the asyncio backend.
    """

    def __init__(
        self,
        node_id: int,
        auth_key: bytes,
        time_scale: float = DEFAULT_TIME_SCALE,
        epoch_wall: Optional[float] = None,
        directory: Optional[dict[int, tuple[str, int]]] = None,
        sock: Optional[socket.socket] = None,
        policy: Optional[DeliveryPolicy] = None,
        rand: Optional[RandomSource] = None,
        tracer: Optional[Tracer] = None,
        codec: Optional[str] = None,
        coalesce: bool = True,
        use_mmsg: bool = True,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale!r}")
        self.node_id = node_id
        self.auth_key = auth_key
        self.time_scale = time_scale
        self._encoder = FrameEncoder(auth_key, codec)
        self.codec = self._encoder.codec
        self.coalesce = coalesce
        self._batcher = FrameBatcher(self._encoder, self._transmit_buf)
        self._flush_scheduled = False
        self._outbox: list[tuple[bytes, tuple[str, int]]] = []
        # Batched syscalls are feature-detected once per process and
        # disabled permanently on the first runtime failure (seccomp, exotic
        # kernels); sendto/recvfrom is always the fallback.
        self._use_mmsg = use_mmsg and udp_batch.available()
        self._mmsg_rx = udp_batch.MmsgReceiver() if self._use_mmsg else None
        self.loop = asyncio.get_running_loop()
        if sock is None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.bind(("127.0.0.1", 0))
        sock.setblocking(False)
        self.sock = sock
        self.address: tuple[str, int] = sock.getsockname()
        self.directory = directory if directory is not None else {}
        self.directory[node_id] = self.address
        # Local wall epoch -> per-process monotonic epoch: readings stay
        # monotone within the process while remaining (roughly, to process
        # scheduling) consistent across every process sharing the epoch.
        if epoch_wall is None:
            epoch_wall = time.time()
        self.epoch_wall = epoch_wall
        self._epoch_mono = time.monotonic() - (time.time() - epoch_wall)
        self._policy = policy
        self._rand = rand if rand is not None else RandomSource(0, f"socket/net/{node_id}")
        self._tracer = tracer
        self._receiver: Optional[Callable[[Envelope], None]] = None
        self._pending_sends: list[asyncio.TimerHandle] = []
        self._closed = False
        self._isolated: frozenset[int] = frozenset()
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        #: Copies suppressed at this sender by injected link faults
        #: (partition cuts, isolation) rather than the ordinary policy.
        self.dropped_fault_count = 0
        #: Datagrams refused at the receiver: truncated, oversized, garbage,
        #: or failing authentication.  Never delivered, always counted.
        self.rejected_count = 0
        #: Datagrams actually put on the wire.  With coalescing this is
        #: <= sent_count - dropped; the gap is the batching win.
        self.datagrams_sent = 0
        self.loop.add_reader(self.sock.fileno(), self._on_readable)

    # ------------------------------------------------------------------
    # Live fault injection (sender-side drop matrix)
    # ------------------------------------------------------------------
    @property
    def policy(self) -> Optional[DeliveryPolicy]:
        return self._policy

    def set_policy(self, policy: Optional[DeliveryPolicy]) -> None:
        """Swap the delivery policy mid-run (live ``SwapPolicy``)."""
        self._policy = policy

    def set_partition(self, island: frozenset[int]) -> None:
        """Cut ``island`` off by wrapping the live policy (sim semantics).

        Every child applies the same island spec to its own sender, so the
        cut is consistent cluster-wide: a copy crossing the cut is dropped
        before any byte leaves the process.
        """
        self._policy = LinkPartitionPolicy(
            self._policy if self._policy is not None else FixedDelay(0.0),
            frozenset(island),
        )

    def heal_partitions(self) -> None:
        """Heal every cut, unwrapping the wrapper stack entirely."""
        policy = self._policy
        unwrapped = False
        while isinstance(policy, LinkPartitionPolicy):
            policy = policy.inner
            unwrapped = True
        if unwrapped:
            self._policy = policy

    def isolate(self, nodes) -> None:
        """Hard-disconnect nodes: every copy touching them is suppressed."""
        self._isolated = self._isolated | frozenset(nodes)

    def reconnect(self, nodes) -> None:
        """Undo :meth:`isolate` for the given nodes."""
        self._isolated = self._isolated - frozenset(nodes)

    def _fault_blocked(self, sender: int, receiver: int) -> bool:
        isolated = self._isolated
        return bool(isolated) and (sender in isolated or receiver in isolated)

    # ------------------------------------------------------------------
    # Time (shared axis for every transport on this epoch)
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current protocol-local time (wall seconds since epoch / scale)."""
        return (time.monotonic() - self._epoch_mono) / self.time_scale

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(self, node_id: int, receiver: Callable[[Envelope], None]) -> None:
        """Attach the local node's message handler (one node per socket)."""
        if node_id != self.node_id:
            raise ValueError(
                f"transport for node {self.node_id} cannot register node {node_id}"
            )
        if self._receiver is not None:
            raise ValueError(f"node {node_id} already registered")
        self._receiver = receiver

    @property
    def node_ids(self) -> list[int]:
        return sorted(self.directory)

    # ------------------------------------------------------------------
    # Sending (policy consulted at the sender, before any byte moves)
    # ------------------------------------------------------------------
    def send(self, sender: int, receiver: int, payload: object) -> None:
        if self._closed:
            return
        if receiver not in self.directory:
            raise ValueError(f"unknown receiver {receiver}")
        body = self._encoder.encode_body(payload, self.now())
        self._send_copy(sender, receiver, payload, body)

    def broadcast(self, sender: int, payload: object) -> None:
        """n point-to-point datagrams, one per known node (self included).

        The envelope body is encoded **once** for the whole wave (one
        ``sent_at`` stamp, matching the sim network's single timestamp per
        broadcast); only the per-copy policy draw and transmit differ.
        Copies released in the same loop tick are coalesced into BATCH
        datagrams per receiver before anything hits the socket.
        """
        if self._closed:
            return
        body = self._encoder.encode_body(payload, self.now())
        for receiver in self.node_ids:
            self._send_copy(sender, receiver, payload, body)

    def _send_copy(
        self, sender: int, receiver: int, payload: object, body: bytes
    ) -> None:
        self.sent_count += 1
        tracer = self._tracer
        if tracer is not None:
            if tracer.enabled:
                tracer.record(
                    self.now(), sender, "send", receiver=receiver, payload=payload
                )
            else:
                tracer.bump("send")
        if self._fault_blocked(sender, receiver):
            self.dropped_count += 1
            self.dropped_fault_count += 1
            return
        delay_units = 0.0
        if self._policy is not None:
            decision = self._policy.decide(sender, receiver, payload, self._rand)
            if decision.drop:
                self.dropped_count += 1
                if decision.partition:
                    self.dropped_fault_count += 1
                return
            delay_units = decision.delay
        if delay_units <= 0.0:
            self._enqueue(receiver, sender, body)
        else:
            handle = self.loop.call_later(
                delay_units * self.time_scale, self._enqueue, receiver, sender, body
            )
            self._pending_sends.append(handle)
            if len(self._pending_sends) > 256:
                # Compact out handles whose deadline has passed (they have
                # fired); only genuinely pending held-back sends survive to
                # be cancelled by close().
                now_loop = self.loop.time()
                self._pending_sends = [
                    h for h in self._pending_sends if h.when() > now_loop
                ]

    def _enqueue(self, receiver: int, sender: int, body: bytes) -> None:
        """A copy's release moment arrived: queue it for the tick's flush.

        Coalescing happens here, not at send time -- only copies whose
        policy-drawn release moments land in the same loop tick share a
        datagram, so drawn delays still govern arrival order.
        """
        if self._closed:
            return
        if not self.coalesce:
            self._send_datagram(bytes(self._encoder.frame(sender, body)), receiver)
            return
        self._batcher.add(receiver, sender, body)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.loop.call_soon(self._flush)

    def _flush(self) -> None:
        """Emit every coalesced run queued this tick, batching the syscalls."""
        self._flush_scheduled = False
        if self._closed:
            self._batcher.clear()
            return
        self._batcher.flush()
        outbox = self._outbox
        if not outbox:
            return
        if len(outbox) > 1 and self._use_mmsg:
            try:
                sent = udp_batch.send_many(self.sock, outbox)
            except OSError:
                udp_batch.disable()
                self._use_mmsg = False
                self._mmsg_rx = None
                sent = 0
            self.datagrams_sent += sent
            del outbox[:sent]  # kernel took the head; sendto the tail
        for payload, addr in outbox:
            self._sendto(payload, addr)
        del outbox[:]

    def _transmit_buf(self, receiver: int, frame_buf, count: int) -> None:
        # FrameBatcher hands us its encoder's reused buffer; copy to stable
        # bytes so the whole tick's datagrams can go out in one sendmmsg.
        self._outbox.append((bytes(frame_buf), self.directory[receiver]))

    def _send_datagram(self, frame: bytes, receiver: int) -> None:
        self._sendto(frame, self.directory[receiver])

    def _sendto(self, frame: bytes, addr: tuple[str, int]) -> None:
        self.datagrams_sent += 1
        try:
            self.sock.sendto(frame, addr)
        except OSError:
            # Localhost UDP can still fail transiently (full socket buffer);
            # the model permits loss only through the policy, but a lost
            # datagram is indistinguishable from a drop to the receiver, and
            # the resend logic covers it.  Count it as a drop.
            self.dropped_count += 1

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _on_readable(self) -> None:
        if self._mmsg_rx is not None:
            # Drain in recvmmsg batches: one syscall per up-to-32 datagrams.
            # The returned views live in the receiver's own buffers and are
            # decoded before the next recv overwrites them.
            while True:
                try:
                    batch = self._mmsg_rx.recv(self.sock)
                except OSError:
                    udp_batch.disable()
                    self._use_mmsg = False
                    self._mmsg_rx = None
                    break  # fall through to the recvfrom loop below
                if not batch:
                    return
                for view in batch:
                    self._handle_datagram(view)
        while True:
            try:
                data, _addr = self.sock.recvfrom(65536)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            self._handle_datagram(data)

    def _handle_datagram(self, data) -> None:
        try:
            frames = decode_frames(data, self.auth_key)
        except FrameError:
            self.rejected_count += 1
            if self._tracer is not None:
                self._tracer.bump("frame_rejected")
            return
        receiver = self._receiver
        if receiver is None:
            self.rejected_count += 1
            return
        now = self.now()
        tracer = self._tracer
        for sender, payload, sent_at in frames:
            self.delivered_count += 1
            envelope = Envelope(
                sender=sender,
                receiver=self.node_id,
                payload=payload,
                sent_at=sent_at,
                delivered_at=now,
            )
            if tracer is not None:
                if tracer.enabled:
                    tracer.record(
                        now,
                        self.node_id,
                        "deliver",
                        sender=sender,
                        payload=payload,
                    )
                else:
                    tracer.bump("deliver")
            receiver(envelope)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Cancel held-back sends, detach the reader, close the socket."""
        if self._closed:
            return
        self._closed = True
        for handle in self._pending_sends:
            handle.cancel()
        self._pending_sends.clear()
        self._batcher.clear()
        self._outbox.clear()
        try:
            self.loop.remove_reader(self.sock.fileno())
        except (ValueError, OSError):
            pass
        self.sock.close()


class SocketHost(AsyncioHost):
    """One node's :class:`~repro.runtime.api.ProtocolHost` over UDP sockets.

    Everything host-side is shared with :class:`~repro.runtime.aio.
    AsyncioHost` -- wall-clock timers through ``loop.call_later`` scaled by
    the transport's ``time_scale``, the timer registry, refusal of new
    timers once closed -- because a host only ever touches its transport's
    ``loop`` / ``time_scale`` / ``now`` / ``register`` / ``send`` /
    ``broadcast`` surface, which :class:`SocketTransport` provides.  Only
    the default randomness stream name differs (backend-tagged so draws
    never collide across backends at the same seed).
    """

    def __init__(
        self,
        node_id: int,
        transport: SocketTransport,
        params: Optional[ProtocolParams] = None,
        rand: Optional[RandomSource] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if rand is None:
            rand = RandomSource(0, f"socket/host/{node_id}")
        super().__init__(node_id, transport, params=params, rand=rand, tracer=tracer)


# ---------------------------------------------------------------------------
# Child-process side
# ---------------------------------------------------------------------------
def _default_policy(params: ProtocolParams) -> DeliveryPolicy:
    # Leave headroom under delta: the kernel and scheduler add their own
    # latency on top of the drawn delay, and the total must stay below d.
    return UniformDelay(0.05 * params.delta, 0.5 * params.delta)


async def _child_run(
    cfg: dict, conn, sock: socket.socket, peers: dict, epoch_wall: float, key: bytes
) -> None:
    params = ProtocolParams(
        n=cfg["n"], f=cfg["f"], delta=cfg["delta"], rho=cfg["rho"]
    )
    node_id = cfg["node_id"]
    root = RandomSource(cfg["seed"])
    tracer = Tracer(enabled=cfg["trace"])
    transport = SocketTransport(
        node_id,
        auth_key=key,
        time_scale=cfg["time_scale"],
        epoch_wall=epoch_wall,
        directory=dict(peers),
        sock=sock,
        policy=cfg["policy"] if cfg["policy"] is not None else _default_policy(params),
        rand=root.split(f"net/{node_id}"),
        tracer=tracer,
        codec=cfg.get("codec"),
        coalesce=cfg.get("coalesce", True),
    )
    host = SocketHost(
        node_id,
        transport,
        params=params,
        rand=root.split(f"host/{node_id}"),
        tracer=tracer,
    )
    decisions: list[Decision] = []
    service_cfg = cfg.get("service")

    metrics = None
    metrics_server = None
    if cfg.get("metrics"):
        from repro.obs.http import ObservabilityServer
        from repro.obs.metrics import NodeMetrics

        metrics = NodeMetrics(node_id, cfg["time_scale"])
        metrics.incarnation.set(cfg.get("incarnation", 0))
        metrics_server = ObservabilityServer(render=metrics.render).start()
        try:
            conn.send(("metrics_port", node_id, metrics_server.port))
        except (BrokenPipeError, OSError):
            pass

    def on_decision(decision: Decision) -> None:
        if metrics is not None:
            # This callback is the head of the decision-tap chain: the
            # service taps stack on top and dispatch through it first, so
            # an observability failure must not unwind their dispatch.
            try:
                metrics.observe_decision(decision)
            except Exception:
                pass
        if service_cfg is not None:
            # Service mode runs thousands of slot decisions; per-decision
            # streaming would flood the pipe.  Progress flows through the
            # child service's rate-limited "applied" reports instead.
            return
        decisions.append(decision)
        try:
            conn.send(("decision", node_id, decision))
        except (BrokenPipeError, OSError):
            pass

    strategy = cfg["strategy"]
    if strategy is None:
        node = ProtocolNode(node_id, host, params, on_decision=on_decision)
    else:
        from repro.faults.byzantine import ByzantineNode

        if not hasattr(strategy, "install"):
            strategy = strategy(root.split(f"byz/{node_id}"))
        node = ByzantineNode(node_id, host, params, strategy)

    service = None
    if service_cfg is not None and strategy is None:
        from repro.service.socket_service import ChildLogService

        service = ChildLogService(node, service_cfg, conn)

    if cfg.get("scramble") and strategy is None:
        # A supervisor-respawned incarnation restarting from "arbitrary
        # state": the same scramble the sim Restart applies, seeded per
        # incarnation so two respawns never replay one stream.
        from repro.faults.transient import TransientFaultInjector

        injector = TransientFaultInjector(
            params,
            root.split(f"scramble/{node_id}/{cfg.get('incarnation', 0)}"),
            value_pool=list(cfg.get("value_pool") or ("A", "B", "C")),
            generals=[cfg["general"]],
        )
        injector.corrupt_node(node)

    # The epoch sits slightly in the future, so every child is armed before
    # local time 0; the General proposes right at the epoch.
    if cfg["value"] is not None and node_id == cfg["general"] and strategy is None:

        def kickoff() -> None:
            node.propose(cfg["value"])
            if cfg.get("repropose_every_d"):
                # Chaos mode: keep offering the same value, starting *at*
                # the epoch (never before it).  ``propose`` is
                # pacing-guarded, so the offers are refused until the
                # Sending Validity Criteria allow a re-initiation -- the
                # wave a healed node converges on.
                node.every_local(
                    cfg["repropose_every_d"] * params.d,
                    lambda: node.propose(cfg["value"]),
                    tag=f"repropose:{node_id}",
                )

        host.schedule_after(max(0.0, -host.now()), kickoff)

    deadline_units = cfg["timeout_units"]
    stop = False
    while not stop:
        if host.now() >= deadline_units:
            break
        try:
            while conn.poll():
                msg = conn.recv()
                if msg[0] == "stop":
                    stop = True
                elif msg[0] == "rebind":
                    # Rejoin handshake: a peer was respawned on a fresh UDP
                    # port; route its copies there from now on.
                    _tag, peer_id, addr = msg
                    transport.directory[peer_id] = tuple(addr)
                elif msg[0] == "fault":
                    _tag, fault_kind, fault_args = msg
                    from repro.faults.live import apply_transport_fault

                    try:
                        apply_transport_fault(
                            transport, params, fault_kind, fault_args
                        )
                    except Exception:
                        # A malformed directive must not kill the node; the
                        # parent's script was validated, so this is belt
                        # and braces.
                        pass
                elif service is not None:
                    service.handle(msg)
        except (EOFError, OSError):
            stop = True
        if not stop:
            if service is not None:
                service.tick(host)
            if metrics is not None:
                metrics.sample(
                    transport=transport,
                    host=host,
                    node=node if isinstance(node, ProtocolNode) else None,
                    service=service,
                )
            await asyncio.sleep(0.02)

    # Snapshot *before* close(): what teardown had to reap.  A running node
    # legitimately holds its perpetual cleanup tick plus timers for
    # still-decaying instance state, so nonzero is normal here -- it is
    # reported for observability, not gated on.  ``live_timers`` is read
    # *after* close() and must be zero: it proves close() drains the
    # registry and nothing can re-arm past it.
    timers_at_close = host.live_timer_count()
    host.close()
    transport.close()
    if metrics_server is not None:
        metrics_server.close()
    result = (
        (
            "result",
            node_id,
            {
                "sent": transport.sent_count,
                "delivered": transport.delivered_count,
                "dropped": transport.dropped_count,
                "rejected": transport.rejected_count,
                "datagrams": transport.datagrams_sent,
                "live_timers": host.live_timer_count(),
                "timers_at_close": timers_at_close,
                "decisions": decisions,
                "trace_events": [
                    (ev.real_time, ev.node, ev.kind, dict(ev.detail), ev.local_time)
                    for ev in tracer.events
                ],
                "trace_counts": tracer.counts(),
                "service": service.result() if service is not None else None,
            },
        )
    )
    try:
        conn.send(result)
    except (BrokenPipeError, OSError):
        # The parent gave up waiting and closed its end; the run is already
        # torn down cleanly, so exit 0 rather than dressing a slow finish
        # up as a crash.
        pass


def _socket_node_main(cfg: dict, conn) -> None:
    """Child-process entry point (module-level so spawn can import it)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        sock.bind(("127.0.0.1", 0))
        conn.send(("port", cfg["node_id"], sock.getsockname()[1]))
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # parent died during setup
            return
        if msg[0] != "start":  # parent aborted setup
            return
        _tag, peers, epoch_wall, key = msg
        if cfg.get("uvloop"):
            # Availability was validated in the parent; non-strict here so a
            # child on a stripped image degrades instead of crashing.
            from repro.runtime.aio import install_uvloop

            install_uvloop()
        asyncio.run(_child_run(cfg, conn, sock, peers, epoch_wall, key))
    finally:
        sock.close()
        conn.close()


# ---------------------------------------------------------------------------
# Parent-side orchestration
# ---------------------------------------------------------------------------
@dataclass
class SocketRunReport:
    """Everything the parent collected from one socket-cluster run."""

    correct_ids: list[int]
    byzantine_ids: list[int]
    decisions: dict[int, Decision] = field(default_factory=dict)
    sent_count: int = 0
    delivered_count: int = 0
    dropped_count: int = 0
    rejected_count: int = 0
    #: Datagrams put on the wire cluster-wide; with coalescing this is
    #: below sent_count - dropped_count, and the gap is the batching win.
    datagrams_sent: int = 0
    #: Per-node auth-failed / malformed datagram counts: forged or garbled
    #: traffic is observable per receiver, not just as a cluster total.
    rejected_by_node: dict[int, int] = field(default_factory=dict)
    #: Registry population *after* each child's close(): must be 0 (close
    #: drains and refuses re-arming).
    live_timers: dict[int, int] = field(default_factory=dict)
    #: Registry population just *before* close(): what teardown reaped.  A
    #: running node holds its cleanup tick + decaying instance timers, so
    #: nonzero is normal; reported for observability, not gated.
    timers_at_close: dict[int, int] = field(default_factory=dict)
    #: Final incarnation's exit code per node (None = still alive at kill).
    exit_codes: dict[int, Optional[int]] = field(default_factory=dict)
    #: Structured fate of each node's final incarnation:
    #: ``ok`` (exited 0 with a result), ``no_result`` (exited 0, result lost
    #: -- e.g. killed mid-write), ``signal:<n>`` / ``error:<n>`` (died by
    #: signal / nonzero exit), ``hung`` (never exited; close() reaped it),
    #: ``retired:<why>`` (supervisor gave up: restart budget exhausted or
    #: the node never bootstrapped).
    exit_reasons: dict[int, str] = field(default_factory=dict)
    #: Supervisor respawn count per node (0 = never died).
    restart_counts: dict[int, int] = field(default_factory=dict)
    tracer: Optional[Tracer] = None

    @property
    def clean_exit(self) -> bool:
        """True iff every child exited 0 with a drained timer registry."""
        return all(code == 0 for code in self.exit_codes.values()) and all(
            count == 0 for count in self.live_timers.values()
        )


class SocketCluster:
    """An n-node cluster of OS processes exchanging UDP datagrams.

    The parent never runs protocol code: it spawns the children, brokers
    the address book, streams decisions off the results pipes, and owns
    teardown (cooperative stop first, then terminate, then kill) so no
    child can outlive a run.

    With ``supervise=True`` the parent is also a supervisor: a child that
    dies abnormally (killed, crashed) is respawned with exponential backoff
    under a bounded per-node restart budget, its fresh UDP address is
    re-brokered to the survivors over the control pipes (a ``rebind``
    handshake), and -- when the budget runs out -- the dead node is retired
    and the survivors keep running (graceful degradation).  A respawned
    incarnation shares the original epoch, so its clock lands on the
    cluster's time axis, and can be spawned with ``scramble_on_restart`` to
    model the paper's recovery-from-arbitrary-state.

    ``fault_script`` accepts anything :func:`~repro.faults.timeline.
    build_timeline` resolves (a :class:`~repro.faults.timeline.FaultScript`,
    a registered timeline name, or inline JSON-able dicts) and drives it
    through a :class:`~repro.faults.live.WallClockFaultDriver` on the
    shared epoch.
    """

    #: Service-mode config shipped to children (set by SocketLogService
    #: before the base __init__ spawns them; None = plain agreement run).
    _service_cfg: Optional[dict] = None

    def __init__(
        self,
        params: ProtocolParams,
        seed: int = 0,
        time_scale: float = DEFAULT_TIME_SCALE,
        byzantine: Optional[dict] = None,
        policy: Optional[DeliveryPolicy] = None,
        trace: bool = False,
        value: Optional[Value] = None,
        general: int = 0,
        timeout_units: Optional[float] = None,
        startup_grace_s: float = 0.35,
        supervise: bool = False,
        restart_budget: int = 3,
        restart_backoff_s: float = 0.25,
        scramble_on_restart: bool = False,
        fault_script: object = None,
        repropose_every_d: Optional[float] = None,
        value_pool: tuple = ("A", "B", "C"),
        codec: Optional[str] = None,
        coalesce: bool = True,
        uvloop: bool = False,
        metrics: bool = False,
    ) -> None:
        if uvloop:
            # Validate availability up front in the parent: a child crashing
            # on import would surface as an opaque spawn failure.
            try:
                import uvloop as _uvloop  # noqa: F401
            except ImportError as exc:
                raise RuntimeError("uvloop requested but not installed") from exc
        self.uvloop = uvloop
        byzantine = byzantine or {}
        if len(byzantine) > params.f:
            raise ValueError(f"{len(byzantine)} Byzantine nodes exceeds f={params.f}")
        self.params = params
        self.seed = seed
        self.time_scale = time_scale
        self.codec = codec
        self.coalesce = coalesce
        self.general = general
        self.value = value
        self.trace = trace
        self.timeout_units = (
            timeout_units if timeout_units is not None else 3.0 * params.delta_agr
        )
        self.correct_ids = [i for i in range(params.n) if i not in byzantine]
        self.byzantine_ids = sorted(byzantine)
        self._auth_key = derive_key(f"socket-cluster/{seed}")
        self._byzantine = dict(byzantine)
        self._policy_cfg = policy
        self._supervise = supervise
        self._restart_budget = restart_budget
        self._restart_backoff_s = restart_backoff_s
        self._scramble_on_restart = scramble_on_restart
        self._repropose_every_d = repropose_every_d
        self._value_pool = tuple(value_pool)
        self._ctx = multiprocessing.get_context("spawn")
        self.procs: dict[int, multiprocessing.Process] = {}
        self.conns: dict[int, Any] = {}
        # Supervisor bookkeeping (all keyed by node id).
        self._incarnations: dict[int, int] = {}
        self._restarts: dict[int, int] = {i: 0 for i in range(params.n)}
        self._exit_reason: dict[int, str] = {}
        self._retired: set[int] = set()
        self._stopped_procs: set[int] = set()  # SIGSTOP'd (soft crash)
        self._down: dict[int, float] = {}  # node -> respawn-not-before (mono)
        self._down_scramble: dict[int, bool] = {}
        self._awaiting_port: set[int] = set()
        self._death_handled: set[tuple[int, int]] = set()
        self._decided_incarnation: dict[int, int] = {}
        self._results: dict[int, dict] = {}
        self._report: Optional[SocketRunReport] = None
        self._stop_sent = False
        self._peers: dict[int, tuple[str, int]] = {}
        self._epoch_wall: Optional[float] = None
        self.metrics = metrics
        #: node_id -> port of the child's /metrics endpoint (metrics mode).
        self._metrics_ports: dict[int, int] = {}
        #: Fault actions accepted via :meth:`inject_fault_script`.
        self.faults_injected = 0
        # Injected scripts cross from HTTP handler threads to the pump loop
        # through this queue: Connection.send is not thread-safe, so only
        # the loop ever talks to the children.
        self._injected_scripts: queue.SimpleQueue = queue.SimpleQueue()
        self._live_drivers: list = []
        self._driver = None
        if fault_script is not None:
            from repro.faults.live import WallClockFaultDriver
            from repro.faults.timeline import build_timeline

            self._driver = WallClockFaultDriver(
                build_timeline(fault_script, params), self
            )
        for node_id in range(params.n):
            self._spawn(node_id)
        self._closed = False
        self._started = False
        self._startup_grace_s = startup_grace_s

    # ------------------------------------------------------------------
    # Spawning (initial and supervisor respawns)
    # ------------------------------------------------------------------
    def _make_cfg(self, node_id: int, incarnation: int, scramble: bool) -> dict:
        return {
            "node_id": node_id,
            "n": self.params.n,
            "f": self.params.f,
            "delta": self.params.delta,
            "rho": self.params.rho,
            "seed": self.seed,
            "time_scale": self.time_scale,
            "trace": self.trace,
            "policy": self._policy_cfg,
            "strategy": self._byzantine.get(node_id),
            "value": self.value,
            "general": self.general,
            "timeout_units": self.timeout_units,
            "incarnation": incarnation,
            "scramble": scramble,
            "repropose_every_d": self._repropose_every_d,
            "value_pool": self._value_pool,
            "codec": self.codec,
            "coalesce": self.coalesce,
            "uvloop": self.uvloop,
            "metrics": self.metrics,
            "service": self._service_cfg,
        }

    def _spawn(
        self, node_id: int, incarnation: int = 0, scramble: bool = False
    ) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_socket_node_main,
            args=(self._make_cfg(node_id, incarnation, scramble), child_conn),
            daemon=True,
            name=f"repro-socket-node-{node_id}.{incarnation}",
        )
        proc.start()
        child_conn.close()
        self.procs[node_id] = proc
        self.conns[node_id] = parent_conn
        self._incarnations[node_id] = incarnation

    # ------------------------------------------------------------------
    # Setup barrier: collect ports, distribute the address book
    # ------------------------------------------------------------------
    def _start_children(self) -> None:
        """Collect every child's UDP port, then broadcast the address book.

        Under supervision the barrier retries: a child that dies before
        reporting its port is respawned (budget permitting) or retired with
        ``exit_reason`` ``retired:spawn_failed`` -- the run proceeds
        degraded.  Without supervision a silent or dead child is a hard
        error, as before.
        """
        deadline = time.monotonic() + STARTUP_TIMEOUT_S
        peers: dict[int, tuple[str, int]] = {}
        want = set(self.procs)
        while want - set(peers) and time.monotonic() < deadline:
            # Respawn (or retire) children that died before reporting.
            for node_id in sorted(want - set(peers)):
                proc = self.procs[node_id]
                if proc.is_alive() or node_id not in self.conns:
                    continue
                if self.conns[node_id].poll():
                    continue  # port message already queued; drain it below
                self._drop_conn(node_id)
                if (
                    self._supervise
                    and self._restarts[node_id] < self._restart_budget
                ):
                    self._restarts[node_id] += 1
                    self._spawn(node_id, self._incarnations[node_id] + 1)
                elif self._supervise:
                    self._exit_reason[node_id] = "spawn_failed"
                    self._retired.add(node_id)
                    want.discard(node_id)
                else:
                    raise RuntimeError(
                        f"node {node_id} died during startup "
                        f"(exit code {proc.exitcode})"
                    )
            waitable = {
                node_id: self.conns[node_id]
                for node_id in want
                if node_id not in peers and node_id in self.conns
            }
            if not waitable:
                break
            ready = multiprocessing.connection.wait(
                list(waitable.values()), timeout=0.2
            )
            for conn in ready:
                node_id = next(i for i, c in waitable.items() if c is conn)
                msg = self._safe_recv(node_id, conn)
                if msg is None:
                    continue
                tag, reported_id, port = msg
                if tag != "port" or reported_id != node_id:
                    raise RuntimeError(
                        f"unexpected setup message from node {node_id}"
                    )
                peers[node_id] = ("127.0.0.1", port)
        leftover = want - set(peers)
        if leftover:
            if not self._supervise:
                raise TimeoutError(
                    f"nodes {sorted(leftover)} never reported a UDP port"
                )
            for node_id in leftover:
                self._exit_reason[node_id] = "spawn_failed"
                self._retired.add(node_id)
                self._drop_conn(node_id)
        self._peers = peers
        epoch_wall = time.time() + self._startup_grace_s
        self._epoch_wall = epoch_wall
        for node_id, conn in list(self.conns.items()):
            if node_id not in peers:
                continue
            try:
                conn.send(("start", peers, epoch_wall, self._auth_key))
            except (BrokenPipeError, OSError):
                pass  # death is classified by the supervisor pump
        if self._driver is not None:
            self._driver.start(epoch_wall)
        self._started = True

    # ------------------------------------------------------------------
    # Supervisor: death detection, backoff respawns, rejoin handshake
    # ------------------------------------------------------------------
    @staticmethod
    def _reason_from_exitcode(code: Optional[int]) -> str:
        if code is None:
            return "hung"
        if code == 0:
            return "ok"
        if code < 0:
            return f"signal:{-code}"
        return f"error:{code}"

    def _drop_conn(self, node_id: int) -> None:
        conn = self.conns.pop(node_id, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    def _safe_recv(self, node_id: int, conn) -> Optional[tuple]:
        """Receive one control message; degrade pipe damage to None.

        A child SIGKILLed mid-write leaves a truncated frame on the pipe;
        unpickling it raises implementation-defined errors.  Either way the
        pipe is dead: retire it and let the supervisor pump classify the
        death from the exit code.  The parent never propagates.
        """
        try:
            return conn.recv()
        except (EOFError, OSError):
            pass
        except Exception:
            pass
        self._drop_conn(node_id)
        return None

    def _pump_supervisor(self) -> None:
        """One supervision tick: classify deaths, fire due respawns."""
        # 1. Detect deaths of current incarnations.
        for node_id, proc in list(self.procs.items()):
            if (
                node_id in self._retired
                or node_id in self._down
                or node_id in self._stopped_procs
            ):
                continue
            if proc.is_alive():
                continue
            key = (node_id, self._incarnations[node_id])
            if key in self._death_handled:
                continue
            self._death_handled.add(key)
            self._handle_death(node_id, proc)
        # 2. Fire respawns whose backoff has elapsed.
        now = time.monotonic()
        for node_id, not_before in list(self._down.items()):
            if now < not_before:
                continue
            del self._down[node_id]
            scramble = self._down_scramble.pop(node_id, False)
            self._spawn(
                node_id, self._incarnations[node_id] + 1, scramble=scramble
            )
            self._awaiting_port.add(node_id)

    def _handle_death(self, node_id: int, proc) -> None:
        self._exit_reason[node_id] = self._reason_from_exitcode(proc.exitcode)
        self._drop_conn(node_id)
        self._awaiting_port.discard(node_id)
        if (
            node_id in self._results
            or self._stop_sent
            or self._closed
            or proc.exitcode == 0
        ):
            return  # a normal completion, not a failure to heal
        if self._supervise and self._restarts[node_id] < self._restart_budget:
            delay = self._restart_backoff_s * (2.0 ** self._restarts[node_id])
            self._restarts[node_id] += 1
            self._down[node_id] = time.monotonic() + delay
            self._down_scramble[node_id] = self._scramble_on_restart
            # The dead incarnation's protocol state -- decisions included --
            # is gone; the revenant must re-decide for the run to converge.
            if self._report is not None:
                self._report.decisions.pop(node_id, None)
            self._decided_incarnation.pop(node_id, None)
        else:
            self._retired.add(node_id)

    def _complete_rejoin(self, node_id: int, port: int) -> None:
        """Finish a respawned child's bootstrap: start it, re-broker it."""
        addr = ("127.0.0.1", port)
        self._peers[node_id] = addr
        self._awaiting_port.discard(node_id)
        conn = self.conns.get(node_id)
        if conn is not None:
            try:
                conn.send(
                    ("start", dict(self._peers), self._epoch_wall, self._auth_key)
                )
            except (BrokenPipeError, OSError):
                return
        for other_id, other_conn in list(self.conns.items()):
            if other_id == node_id:
                continue
            try:
                other_conn.send(("rebind", node_id, addr))
            except (BrokenPipeError, OSError):
                pass

    # ------------------------------------------------------------------
    # Live fault surface (used by WallClockFaultDriver)
    # ------------------------------------------------------------------
    def broadcast_fault(self, kind: str, args: dict) -> None:
        """Send a link-fault directive to every currently live child."""
        for conn in list(self.conns.values()):
            try:
                conn.send(("fault", kind, dict(args)))
            except (BrokenPipeError, OSError):
                pass

    def inject_fault_script(self, spec: object) -> dict:
        """Validate a JSON fault spec and queue it for the pump loop.

        Safe to call from HTTP handler threads (``POST /faults``):
        validation happens here so bad input fails fast (a 400), but the
        driver is built and armed on the pump loop, which alone talks to
        the control pipes.  ``at_d`` offsets of an injected script are
        relative to *injection time*, so ``at_d: 0`` means "now".
        """
        from repro.faults.live import validate_live_script
        from repro.obs.control import parse_fault_payload

        script = parse_fault_payload(spec)
        validate_live_script(script, backend="socket")
        self._injected_scripts.put(script)
        self.faults_injected += len(script.actions)
        return {"accepted": len(script.actions), "backend": "socket"}

    def _pump_faults(self) -> None:
        """Arm newly injected scripts and pump every fault driver."""
        while True:
            try:
                script = self._injected_scripts.get_nowait()
            except queue.Empty:
                break
            from repro.faults.live import WallClockFaultDriver

            driver = WallClockFaultDriver(script, self)
            driver.start(time.time())
            self._live_drivers.append(driver)
        if self._driver is not None:
            self._driver.pump()
        if self._live_drivers:
            for driver in self._live_drivers:
                driver.pump()
            self._live_drivers = [
                driver for driver in self._live_drivers if not driver.done
            ]

    # ------------------------------------------------------------------
    # Control-plane status (read by HTTP handler threads: simple fields
    # only, everything is snapshotted into plain values here)
    # ------------------------------------------------------------------
    def status_snapshot(self) -> dict:
        """Cluster-wide supervision status for ``GET /status``."""
        nodes: dict[str, dict] = {}
        for node_id in range(self.params.n):
            proc = self.procs.get(node_id)
            mport = self._metrics_ports.get(node_id)
            nodes[str(node_id)] = {
                "alive": bool(proc is not None and proc.is_alive()),
                "incarnation": self._incarnations.get(node_id, 0),
                "restarts": self._restarts.get(node_id, 0),
                "retired": node_id in self._retired,
                "pending_respawn": node_id in self._down,
                "exit_reason": self._exit_reason.get(node_id),
                "byzantine": node_id in self._byzantine,
                "metrics_url": (
                    f"http://127.0.0.1:{mport}/metrics"
                    if mport is not None
                    else None
                ),
            }
        return {
            "backend": "socket",
            "n": self.params.n,
            "f": self.params.f,
            "general": self.general,
            "supervise": self._supervise,
            "started": self._started,
            "stopping": self._stop_sent,
            "faults_injected": self.faults_injected,
            "nodes": nodes,
        }

    def kill_node(self, node_id: int, state_loss: bool = True) -> None:
        """Crash one child: SIGKILL (full state loss) or SIGSTOP (a stun)."""
        proc = self.procs.get(node_id)
        if proc is None or not proc.is_alive() or proc.pid is None:
            return
        if state_loss:
            proc.kill()
            # The heap died with the process: any decision this incarnation
            # reported no longer exists on the node, so the run must not
            # count it toward convergence (and must not race a stop on it).
            if self._report is not None:
                self._report.decisions.pop(node_id, None)
            self._decided_incarnation.pop(node_id, None)
        else:
            try:
                os.kill(proc.pid, signal.SIGSTOP)
            except (ProcessLookupError, OSError):
                return
            self._stopped_procs.add(node_id)

    def revive_node(self, node_id: int, scramble: bool = False) -> None:
        """Scripted ``Restart``: SIGCONT a stunned child, respawn a dead one.

        A scripted restart is explicit, so it fires immediately (no
        backoff) and overrides retirement; a node that is alive and running
        is left alone, mirroring the sim Restart's crashed-only no-op.
        """
        proc = self.procs.get(node_id)
        if proc is None:
            return
        if node_id in self._stopped_procs:
            if proc.pid is not None:
                try:
                    os.kill(proc.pid, signal.SIGCONT)
                except (ProcessLookupError, OSError):
                    pass
            self._stopped_procs.discard(node_id)
            return
        if proc.is_alive():
            return
        key = (node_id, self._incarnations[node_id])
        if key not in self._death_handled:
            self._death_handled.add(key)
            self._exit_reason[node_id] = self._reason_from_exitcode(proc.exitcode)
            self._drop_conn(node_id)
        self._retired.discard(node_id)
        self._down.pop(node_id, None)
        self._down_scramble.pop(node_id, None)
        if self._report is not None:
            self._report.decisions.pop(node_id, None)
        self._decided_incarnation.pop(node_id, None)
        self._restarts[node_id] += 1
        self._spawn(node_id, self._incarnations[node_id] + 1, scramble=scramble)
        self._awaiting_port.add(node_id)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_agreement(self) -> SocketRunReport:
        """Run one agreement to completion and tear the cluster down.

        Returns the consolidated report; ``report.decisions`` holds the
        latest decision per correct node for the configured General.  The
        run converges when every non-retired correct node's **current
        incarnation** has decided -- a node killed and respawned mid-run
        must re-decide before the parent sends stop.
        """
        if not self._started:
            self._start_children()
        report = SocketRunReport(
            correct_ids=list(self.correct_ids),
            byzantine_ids=list(self.byzantine_ids),
        )
        self._report = report
        results = self._results
        wall_deadline = (
            time.monotonic()
            + self._startup_grace_s
            + self.timeout_units * self.time_scale
            + 5.0
        )
        while time.monotonic() < wall_deadline:
            self._pump_faults()
            self._pump_supervisor()
            if not self._stop_sent and self._all_decided(report):
                self._send_stop()
                self._stop_sent = True
            waitable = {
                node_id: conn
                for node_id, conn in self.conns.items()
                if node_id not in results
            }
            if not waitable:
                if not self._down and not self._awaiting_port:
                    break
                time.sleep(0.02)
                continue
            ready = multiprocessing.connection.wait(
                list(waitable.values()), timeout=0.05
            )
            for conn in ready:
                node_id = next(i for i, c in waitable.items() if c is conn)
                msg = self._safe_recv(node_id, conn)
                if msg is None:
                    continue
                self._dispatch(report, results, node_id, conn, msg)
        if not self._stop_sent:
            self._send_stop()
            self._stop_sent = True
        # Late results from children that were still tearing down.
        late_deadline = time.monotonic() + 5.0
        while time.monotonic() < late_deadline:
            waitable = {
                node_id: conn
                for node_id, conn in self.conns.items()
                if node_id not in results
            }
            if not waitable:
                break
            ready = multiprocessing.connection.wait(
                list(waitable.values()), timeout=0.1
            )
            for conn in ready:
                node_id = next(i for i, c in waitable.items() if c is conn)
                msg = self._safe_recv(node_id, conn)
                if msg is None:
                    continue
                self._dispatch(report, results, node_id, conn, msg)
        self._collect(report, results)
        return report

    def _all_decided(self, report: SocketRunReport) -> bool:
        decided_any = False
        for node_id in self.correct_ids:
            if node_id in self._retired:
                continue
            if node_id not in report.decisions:
                return False
            if self._decided_incarnation.get(node_id, 0) != self._incarnations[
                node_id
            ]:
                return False
            decided_any = True
        return decided_any

    def _dispatch(
        self,
        report: SocketRunReport,
        results: dict[int, dict],
        node_id: int,
        conn,
        msg: tuple,
    ) -> None:
        tag = msg[0]
        if tag == "decision":
            _tag, sender_id, decision = msg
            if decision.general == self.general and sender_id in self.correct_ids:
                held = report.decisions.get(sender_id)
                if held is None or decision.returned_real > held.returned_real:
                    report.decisions[sender_id] = decision
                self._decided_incarnation[sender_id] = self._incarnations.get(
                    sender_id, 0
                )
        elif tag == "result":
            _tag, sender_id, payload = msg
            results[sender_id] = payload
        elif tag == "port":
            _tag, reported_id, port = msg
            self._complete_rejoin(reported_id, port)
        elif tag == "metrics_port":
            _tag, reported_id, port = msg
            self._metrics_ports[reported_id] = port

    def _send_stop(self) -> None:
        for conn in self.conns.values():
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass

    def _collect(self, report: SocketRunReport, results: dict[int, dict]) -> None:
        """Merge per-node results; a missing or damaged result degrades to a
        structured ``exit_reason``, never a parent exception.

        Counters cover each node's **final** incarnation only: a killed
        incarnation's heap -- counters included -- died with it.
        """
        tracer = Tracer(enabled=self.trace)
        merged_events = []
        for node_id, payload in results.items():
            report.sent_count += payload["sent"]
            report.delivered_count += payload["delivered"]
            report.dropped_count += payload["dropped"]
            report.rejected_count += payload["rejected"]
            report.datagrams_sent += payload.get("datagrams", 0)
            report.rejected_by_node[node_id] = payload["rejected"]
            report.live_timers[node_id] = payload["live_timers"]
            report.timers_at_close[node_id] = payload["timers_at_close"]
            for decision in payload["decisions"]:
                if decision.general != self.general or node_id not in self.correct_ids:
                    continue
                held = report.decisions.get(node_id)
                if held is None or decision.returned_real > held.returned_real:
                    report.decisions[node_id] = decision
            merged_events.extend(payload["trace_events"])
            for kind, count in payload["trace_counts"].items():
                tracer.bump_many(kind, count)
        if self.trace:
            from repro.sim.trace import TraceEvent

            merged_events.sort(key=lambda ev: ev[0])
            tracer._events.extend(
                TraceEvent(rt, node, kind, detail, lt)
                for rt, node, kind, detail, lt in merged_events
            )
        report.tracer = tracer
        self.close()
        for node_id, proc in self.procs.items():
            code = proc.exitcode
            report.exit_codes[node_id] = code
            report.restart_counts[node_id] = self._restarts[node_id]
            if node_id in self._retired:
                reason = self._exit_reason.get(node_id, "retired")
                if reason == "ok":
                    reason = "no_result"
                report.exit_reasons[node_id] = f"retired:{reason}"
            elif node_id in results:
                report.exit_reasons[node_id] = self._reason_from_exitcode(code)
            elif code == 0:
                report.exit_reasons[node_id] = "no_result"
            else:
                report.exit_reasons[node_id] = self._reason_from_exitcode(code)
        missing = [i for i in self.procs if i not in results]
        for node_id in missing:
            report.live_timers.setdefault(node_id, -1)

    # ------------------------------------------------------------------
    # Teardown: no child outlives the cluster
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Join every child; escalate to terminate, then kill.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        # Wake any SIGSTOP'd children first: a stopped process cannot honour
        # the cooperative stop and would eat the full join timeout.
        for node_id in list(self._stopped_procs):
            proc = self.procs.get(node_id)
            if proc is not None and proc.is_alive() and proc.pid is not None:
                try:
                    os.kill(proc.pid, signal.SIGCONT)
                except (ProcessLookupError, OSError):
                    pass
        self._stopped_procs.clear()
        self._send_stop()
        for proc in self.procs.values():
            proc.join(timeout=5.0)
        for proc in self.procs.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for proc in self.procs.values():
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
        for conn in self.conns.values():
            try:
                conn.close()
            except OSError:
                pass

    def __del__(self) -> None:  # last-resort orphan guard
        try:
            self.close()
        except Exception:
            pass


def run_agreement_socket(
    n: int = 4,
    f: int = 1,
    seed: int = 0,
    value: Value = "v",
    general: int = 0,
    byzantine: Optional[dict] = None,
    time_scale: float = DEFAULT_TIME_SCALE,
    delta: float = 1.0,
    rho: float = 0.0,
    trace: bool = False,
    timeout_units: Optional[float] = None,
    policy: Optional[DeliveryPolicy] = None,
    supervise: bool = False,
    fault_script: object = None,
    scramble_on_restart: bool = False,
    restart_budget: int = 3,
    restart_backoff_s: float = 0.25,
    repropose_every_d: Optional[float] = None,
    codec: Optional[str] = None,
    coalesce: bool = True,
    uvloop: bool = False,
) -> tuple[SocketRunReport, dict[int, Decision]]:
    """Spawn a socket cluster, run one agreement, tear every process down.

    Returns ``(report, latest decision per correct node)`` -- the same shape
    as :func:`repro.runtime.aio.run_agreement_async`, with the report
    standing in for the in-process cluster object.
    """
    params = ProtocolParams(n=n, f=f, delta=delta, rho=rho)
    cluster = SocketCluster(
        params,
        seed=seed,
        time_scale=time_scale,
        byzantine=byzantine,
        policy=policy,
        trace=trace,
        value=value,
        general=general,
        timeout_units=timeout_units,
        supervise=supervise,
        fault_script=fault_script,
        scramble_on_restart=scramble_on_restart,
        restart_budget=restart_budget,
        restart_backoff_s=restart_backoff_s,
        repropose_every_d=repropose_every_d,
        codec=codec,
        coalesce=coalesce,
        uvloop=uvloop,
    )
    try:
        report = cluster.run_agreement()
    finally:
        cluster.close()
    return report, dict(report.decisions)


__all__ = [
    "DEFAULT_TIME_SCALE",
    "SocketCluster",
    "SocketHost",
    "SocketRunReport",
    "SocketTransport",
    "run_agreement_socket",
]
