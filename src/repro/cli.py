"""Command-line interface.

Subcommands::

    python -m repro.cli constants --n 7 --f 2 --delta 1.0
        Print the derived timing constants for a configuration.

    python -m repro.cli run --n 7 --f 2 --seed 3 [--attack equivocate]
        Run one agreement scenario and print per-node outcomes plus the
        property-checker verdicts.  With ``--seeds 0 1 2 ... --workers K``
        the per-seed runs fan out over a process pool and a summary table
        is printed instead.

    python -m repro.cli run-async --n 4 --f 1
        Run one agreement on the **asyncio runtime backend**: real
        coroutines, wall-clock-scaled timers, in-process transport -- the
        same protocol code the simulator drives, hosted sans-I/O.  By
        default one participant is a mirror-amplifying Byzantine sender.

    python -m repro.cli run-socket --n 4 --f 1
        Run one agreement on the **socket runtime backend**: one OS process
        per node, real UDP datagrams on localhost, authenticated frames,
        wall-clock timers.  Same default Byzantine cast as ``run-async``;
        exits non-zero if any child leaks a timer or fails to exit cleanly.

    python -m repro.cli chaos --n 4 --f 1
        The paper's self-stabilization claim as a live demo: run the socket
        backend under supervision, SIGKILL ``f`` nodes mid-agreement (full
        state loss), let the supervisor respawn them with *scrambled*
        state, and verify every node -- revenants included -- converges to
        the agreed value within a recovery bound.  Exits non-zero unless
        agreement, convergence, recovery, and a clean teardown all hold.

    python -m repro.cli stabilize --n 7 --seed 5
        Run the havoc -> Delta_stb -> agree stabilization scenario and
        report recovery.  Also accepts ``--seeds``/``--workers``.

    python -m repro.cli serve --backend asyncio --commands 10000 --rate 1000
        Run the replicated command-log service: pipelined slot-indexed
        agreement under a sustained open-loop workload, on the asyncio or
        socket backend.  Prints the server-side report (throughput,
        agreement instances/s, live-state peaks) and exits non-zero unless
        every correct replica applied the identical command sequence.

    python -m repro.cli workload --backend asyncio --commands 10000
        The same run, reported from the client's side: offered vs achieved
        rate and the per-command decide-latency distribution.

    python -m repro.cli suite --preset smoke [--config suite.json]
        Expand a scenario-matrix suite config (grids over n, casts,
        delivery policies and fault timelines), fan scenario x seed over
        the pool, and print the consolidated report.

    python -m repro.cli list-experiments
        List every experiment registered with the scenario engine.
"""

from __future__ import annotations

import argparse
import sys
from functools import partial
from typing import Optional, Sequence

from repro.core.params import BOTTOM, ProtocolParams, max_faults
from repro.faults.byzantine import (
    CrashStrategy,
    EquivocatingGeneralStrategy,
    SelectiveGeneralStrategy,
    StaggeredGeneralStrategy,
)
from repro.faults.transient import TransientFaultInjector
from repro.harness import properties
from repro.harness.parallel import SeedPool
from repro.harness.scenario import Cluster, ScenarioConfig

ATTACKS = ("none", "equivocate", "staggered", "selective", "crash")
ASYNC_ATTACKS = ("none", "mirror", "twofaced", "crash")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Self-stabilizing Byzantine Agreement (Daliot & Dolev, PODC 2006)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--n", type=int, default=7, help="number of nodes")
        p.add_argument("--f", type=int, default=None, help="fault bound (default: max for n)")
        p.add_argument("--delta", type=float, default=1.0, help="message delay bound")
        p.add_argument("--rho", type=float, default=1e-4, help="clock drift bound")

    def add_fanout_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--seeds",
            type=int,
            nargs="+",
            default=None,
            help="run these seeds (fanned out over --workers) and summarize",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            help="process-pool size for per-seed fan-out (default: serial)",
        )
        p.add_argument(
            "--shards",
            type=int,
            default=None,
            help="run each scenario on the sharded sim kernel with this many "
            "shard groups (bit-identical results; default: serial kernel)",
        )
        p.add_argument(
            "--shard-transport",
            choices=("process", "inline"),
            default=None,
            help="shard execution transport (default: process)",
        )

    constants = sub.add_parser("constants", help="print derived timing constants")
    add_model_args(constants)

    run = sub.add_parser("run", help="run one agreement scenario")
    add_model_args(run)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--value", default="v", help="the General's value")
    run.add_argument("--general", type=int, default=0)
    run.add_argument("--attack", choices=ATTACKS, default="none")
    add_fanout_args(run)

    run_async = sub.add_parser(
        "run-async",
        help="run one agreement on the asyncio runtime backend (real coroutines)",
    )
    add_model_args(run_async)
    run_async.add_argument("--seed", type=int, default=0)
    run_async.add_argument("--value", default="v", help="the General's value")
    run_async.add_argument("--general", type=int, default=0)
    run_async.add_argument(
        "--attack", choices=ASYNC_ATTACKS, default="mirror",
        help="byzantine cast (default: one mirror-amplifying participant)",
    )
    run_async.add_argument(
        "--time-scale",
        type=float,
        default=None,
        help="wall-clock seconds per protocol time unit (default: 0.02)",
    )
    run_async.add_argument(
        "--codec",
        choices=("msgpack", "json"),
        default=None,
        help="wire codec (default: msgpack; json is the no-dependency fallback)",
    )
    run_async.add_argument(
        "--uvloop",
        action="store_true",
        help="run the event loop on uvloop (fails if uvloop is not installed)",
    )

    run_socket = sub.add_parser(
        "run-socket",
        help="run one agreement on the socket runtime backend "
        "(UDP datagrams, one OS process per node)",
    )
    add_model_args(run_socket)
    run_socket.add_argument("--seed", type=int, default=0)
    run_socket.add_argument("--value", default="v", help="the General's value")
    run_socket.add_argument("--general", type=int, default=0)
    run_socket.add_argument(
        "--attack", choices=ASYNC_ATTACKS, default="mirror",
        help="byzantine cast (default: one mirror-amplifying participant)",
    )
    run_socket.add_argument(
        "--time-scale",
        type=float,
        default=None,
        help="wall-clock seconds per protocol time unit (default: 0.05)",
    )
    run_socket.add_argument(
        "--timeout-units",
        type=float,
        default=None,
        help="hard per-child deadline in protocol units (default: 3 * Delta_agr)",
    )
    run_socket.add_argument(
        "--codec",
        choices=("msgpack", "json"),
        default=None,
        help="wire codec (default: msgpack; json is the no-dependency fallback)",
    )
    run_socket.add_argument(
        "--uvloop",
        action="store_true",
        help="node children run their event loops on uvloop "
        "(fails if uvloop is not installed)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="SIGKILL f socket-backend nodes mid-agreement and verify the "
        "supervisor heals them into re-convergence",
    )
    chaos.add_argument("--n", type=int, default=4, help="number of nodes")
    chaos.add_argument(
        "--f", type=int, default=None, help="fault bound = victims killed "
        "(default: max for n)"
    )
    chaos.add_argument("--delta", type=float, default=1.0, help="message delay bound")
    chaos.add_argument(
        "--rho", type=float, default=0.0,
        help="clock drift bound (default 0: wall clocks share one epoch)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--value", default="v", help="the General's value")
    chaos.add_argument("--general", type=int, default=0)
    chaos.add_argument(
        "--time-scale",
        type=float,
        default=0.02,
        help="wall-clock seconds per protocol time unit (default: 0.02)",
    )
    chaos.add_argument(
        "--kill-at-d",
        type=float,
        default=1.0,
        help="first SIGKILL fires this many d after the epoch (default: 1.0; "
        "further victims are staggered 1d apart)",
    )
    chaos.add_argument(
        "--victims",
        type=int,
        nargs="+",
        default=None,
        help="node ids to kill (default: the f highest non-General ids)",
    )
    chaos.add_argument(
        "--recovery-bound-d",
        type=float,
        default=None,
        help="max allowed victim decision latency after its kill, in units "
        "of d (default: (Delta_v + 2*Delta_agr)/d)",
    )
    chaos.add_argument(
        "--timeout-units",
        type=float,
        default=None,
        help="hard per-child deadline in protocol units "
        "(default: kill time + Delta_v + 3*Delta_agr)",
    )
    chaos.add_argument(
        "--restart-backoff-s",
        type=float,
        default=0.1,
        help="supervisor base backoff before a respawn (default: 0.1s)",
    )
    chaos.add_argument(
        "--codec",
        choices=("msgpack", "json"),
        default=None,
        help="wire codec (default: msgpack; json is the no-dependency fallback)",
    )
    chaos.add_argument("--trace", action="store_true", help="record child traces")

    def add_service_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            choices=("asyncio", "socket"),
            default="asyncio",
            help="wall-clock runtime hosting the replicas (default: asyncio)",
        )
        p.add_argument("--n", type=int, default=4, help="number of nodes")
        p.add_argument(
            "--f", type=int, default=None, help="fault bound (default: max for n)"
        )
        p.add_argument("--delta", type=float, default=1.0, help="message delay bound")
        p.add_argument(
            "--rho", type=float, default=0.0,
            help="clock drift bound (default 0: wall clocks share one epoch)",
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--primary", type=int, default=0,
            help="node hosting the log coordinator (default: 0)",
        )
        p.add_argument(
            "--rate", type=float, default=1000.0,
            help="open-loop arrival rate, commands/s (default: 1000)",
        )
        p.add_argument(
            "--commands", type=int, default=10_000,
            help="total commands to issue (default: 10000)",
        )
        p.add_argument(
            "--window", type=int, default=8,
            help="max agreement slots in flight (default: 8)",
        )
        p.add_argument(
            "--batch", type=int, default=128,
            help="max commands batched into one slot (default: 128)",
        )
        p.add_argument(
            "--time-scale", type=float, default=0.1,
            help="wall-clock seconds per protocol time unit (default: 0.1; "
            "d must outlast scheduler stalls under load)",
        )
        p.add_argument(
            "--fixed", action="store_true",
            help="fixed-interval arrivals (default: Poisson process)",
        )
        p.add_argument(
            "--metrics", action="store_true",
            help="expose Prometheus /metrics per node plus a cluster-wide "
            "/status + POST /faults control endpoint (printed as "
            "'control: http://...' on startup)",
        )
        p.add_argument(
            "--control-port", type=int, default=0,
            help="TCP port for the control endpoint (default: 0 = ephemeral)",
        )
        p.add_argument(
            "--supervise", action="store_true",
            help="socket backend: respawn children that die mid-run and heal "
            "laggards via f+1 log repair (the live self-stabilization demo)",
        )

    serve = sub.add_parser(
        "serve",
        help="run the replicated command-log service under an open-loop "
        "workload and print the server-side report",
    )
    add_service_args(serve)

    workload = sub.add_parser(
        "workload",
        help="run the replicated-log service and print the client-side view "
        "(offered vs achieved rate, decide-latency distribution)",
    )
    add_service_args(workload)

    stab = sub.add_parser("stabilize", help="havoc -> wait Delta_stb -> agree")
    add_model_args(stab)
    stab.add_argument("--seed", type=int, default=0)
    stab.add_argument("--garbage", type=int, default=300, help="forged messages")
    add_fanout_args(stab)

    suite = sub.add_parser(
        "suite", help="run a scenario-matrix suite (grids x timelines x seeds)"
    )
    suite.add_argument(
        "--preset",
        default=None,
        help="named suite config (see repro.harness.suite.SUITE_PRESETS)",
    )
    suite.add_argument("--config", default=None, help="path to a JSON suite config")
    suite.add_argument("--csv", action="store_true", help="emit CSV instead of Markdown")
    add_fanout_args(suite)

    sub.add_parser("list-experiments", help="list registered experiments")
    return parser


def _params(args: argparse.Namespace) -> ProtocolParams:
    f = args.f if args.f is not None else max_faults(args.n)
    return ProtocolParams(n=args.n, f=f, delta=args.delta, rho=args.rho)


def cmd_constants(args: argparse.Namespace) -> int:
    params = _params(args)
    for name, value in params.describe().items():
        print(f"{name:12s} = {value}")
    return 0


def _attack_strategies(
    attack: str, general: int, params: ProtocolParams
) -> dict:
    others = tuple(i for i in range(params.n) if i != general)
    half = len(others) // 2
    if attack == "none":
        return {}
    if attack == "equivocate":
        return {
            general: EquivocatingGeneralStrategy(
                "A", "B", others[:half], others[half:]
            )
        }
    if attack == "staggered":
        return {general: StaggeredGeneralStrategy("S", spread_local=10 * params.d)}
    if attack == "selective":
        return {general: SelectiveGeneralStrategy("X", others[: len(others) - 1])}
    if attack == "crash":
        return {general: CrashStrategy()}
    raise AssertionError(attack)


# ---------------------------------------------------------------------------
# Per-seed bodies (module level so they pickle into pool workers)
# ---------------------------------------------------------------------------
def _run_one_seed(
    params: ProtocolParams, attack: str, general: int, value: str, seed: int
) -> tuple:
    """One `run` scenario: (agreement, validity, timeliness, decided_nodes)."""
    byzantine = _attack_strategies(attack, general, params)
    cluster = Cluster(ScenarioConfig(params=params, seed=seed, byzantine=byzantine))
    t0 = cluster.sim.now
    if attack == "none":
        cluster.propose(general=general, value=value)
    cluster.run_for(3 * params.delta_agr)
    agree = properties.agreement(cluster, general).holds
    latest = cluster.latest_decision_per_node(general)
    decided = sum(1 for dec in latest.values() if dec.decided)
    if attack == "none":
        v_ok = properties.validity(cluster, general, value).holds
        t_ok = properties.timeliness_validity(cluster, general, t0).holds
    else:
        v_ok = t_ok = None
    return agree, v_ok, t_ok, decided


def _stabilize_one_seed(params: ProtocolParams, garbage: int, seed: int) -> tuple:
    """One `stabilize` scenario: (proposal_unblocked, post_stb_validity)."""
    cluster = Cluster(ScenarioConfig(params=params, seed=seed))
    injector = TransientFaultInjector(
        params, cluster.rng.split("inj"), value_pool=["A", "B", "C"], generals=[0, 1]
    )
    cluster.run_for(5 * params.d)
    injector.havoc(cluster.correct_nodes(), cluster.net, garbage)
    cluster.run_for(params.delta_stb)
    since = cluster.sim.now
    ok = cluster.propose(general=0, value="recovered")
    cluster.run_for(params.delta_agr + 10 * params.d)
    validity = properties.validity(cluster, 0, "recovered", since_real=since)
    return ok, validity.holds


def cmd_run(args: argparse.Namespace) -> int:
    params = _params(args)
    if args.seeds is not None:
        seed_fn = partial(_run_one_seed, params, args.attack, args.general, args.value)
        if args.shards is not None:
            from repro.harness.registry import _ShardedSeedFn

            seed_fn = _ShardedSeedFn(seed_fn, args.shards, args.shard_transport)
        with SeedPool.shared(args.workers) as pool:
            results = pool.map(seed_fn, args.seeds)
        all_ok = True
        for seed, (agree, v_ok, t_ok, decided) in zip(args.seeds, results):
            verdicts = f"agreement={agree}"
            seed_ok = agree
            if v_ok is not None:
                verdicts += f" validity={v_ok} timeliness={t_ok}"
                seed_ok = agree and v_ok and t_ok
            print(f"seed {seed}: {verdicts} decided_nodes={decided}")
            all_ok = all_ok and seed_ok
        print(f"{len(args.seeds)} seeds: {'all ok' if all_ok else 'FAILURES'}")
        return 0 if all_ok else 1

    byzantine = _attack_strategies(args.attack, args.general, params)
    cluster = Cluster(
        ScenarioConfig(
            params=params,
            seed=args.seed,
            byzantine=byzantine,
            shards=args.shards,
            shard_transport=args.shard_transport or "process",
        )
    )
    if args.attack == "none":
        t0 = cluster.sim.now
        cluster.propose(general=args.general, value=args.value)
    cluster.run_for(3 * params.delta_agr)

    latest = cluster.latest_decision_per_node(args.general)
    if not latest:
        print("no correct node returned anything")
    for node_id in sorted(latest):
        dec = latest[node_id]
        outcome = "ABORT" if dec.value is BOTTOM else repr(dec.value)
        print(f"node {node_id}: {outcome} at rt={dec.returned_real:.2f}")

    report = properties.agreement(cluster, args.general)
    print(f"agreement: {report.holds}")
    if args.attack == "none":
        validity = properties.validity(cluster, args.general, args.value)
        timeliness = properties.timeliness_validity(cluster, args.general, t0)
        print(f"validity:  {validity.holds}")
        print(f"timeliness: {timeliness.holds}")
        return 0 if (report.holds and validity.holds and timeliness.holds) else 1
    return 0 if report.holds else 1


def _wallclock_attack_cast(
    command: str, attack: str, general: int, params: ProtocolParams
) -> tuple[Optional[int], dict]:
    """Byzantine cast for the wall-clock backends; raises SystemExit(2) on
    an unusable configuration (mirrors the argparse error convention)."""
    from repro.faults.byzantine import (
        CrashStrategy as _Crash,
        MirrorParticipantStrategy,
        TwoFacedParticipantStrategy,
    )

    if not 0 <= general < params.n:
        print(f"{command}: --general {general} out of range for n={params.n}",
              file=sys.stderr)
        raise SystemExit(2)
    byz_id: Optional[int] = None
    if attack != "none":
        others = tuple(i for i in range(params.n) if i != general)
        if not others:
            print(f"{command}: no non-General node left to play the Byzantine "
                  "sender; use --attack none", file=sys.stderr)
            raise SystemExit(2)
        byz_id = others[-1]  # highest non-General id plays the Byzantine sender
    if attack == "none":
        byzantine = {}
    elif attack == "mirror":
        byzantine = {byz_id: MirrorParticipantStrategy()}
    elif attack == "twofaced":
        half = [i for i in range(params.n) if i != byz_id][: params.n // 2]
        byzantine = {byz_id: TwoFacedParticipantStrategy(tuple(half))}
    elif attack == "crash":
        byzantine = {byz_id: _Crash()}
    else:
        raise AssertionError(attack)
    return byz_id, byzantine


def _wallclock_verdict(
    decisions: dict,
    correct: list,
    byz_id: Optional[int],
    attack: str,
    value: str,
    transport_line: str,
) -> bool:
    """Shared report tail for the wall-clock backends: print per-node
    outcomes and the agreement/decided verdicts; True iff the run is good."""
    if byz_id is not None:
        print(f"byzantine node {byz_id}: {attack}")
    for node_id in correct:
        dec = decisions.get(node_id)
        if dec is None:
            print(f"node {node_id}: (no return within timeout)")
        else:
            outcome = "ABORT" if dec.value is BOTTOM else repr(dec.value)
            print(f"node {node_id}: {outcome} at local={dec.returned_local:.2f}")
    print(transport_line)
    decided = [d for d in decisions.values() if d.decided]
    agreement = (
        len(decisions) == len(correct)
        and len({repr(d.value) for d in decisions.values()}) <= 1
    )
    all_decided_value = bool(decided) and all(d.value == value for d in decided)
    print(f"agreement: {agreement}")
    print(f"decided:   {len(decided)}/{len(correct)} nodes")
    return agreement and all_decided_value


def cmd_run_async(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runtime.aio import (
        DEFAULT_TIME_SCALE,
        install_uvloop,
        run_agreement_async,
    )

    params = _params(args)
    general = args.general
    try:
        byz_id, byzantine = _wallclock_attack_cast(
            "run-async", args.attack, general, params
        )
    except SystemExit as exc:
        return int(exc.code)

    if args.uvloop:
        try:
            install_uvloop(strict=True)
        except RuntimeError as exc:
            print(f"run-async: {exc}", file=sys.stderr)
            return 2

    time_scale = args.time_scale if args.time_scale is not None else DEFAULT_TIME_SCALE
    cluster, decisions = asyncio.run(
        run_agreement_async(
            n=params.n,
            f=params.f,
            seed=args.seed,
            value=args.value,
            general=general,
            byzantine=byzantine,
            time_scale=time_scale,
            delta=args.delta,
            rho=args.rho,
            codec=args.codec,
        )
    )

    ok = _wallclock_verdict(
        decisions,
        sorted(cluster.correct_ids),
        byz_id if byzantine else None,
        args.attack,
        args.value,
        f"transport: {cluster.transport.sent_count} sent, "
        f"{cluster.transport.delivered_count} delivered "
        f"(time_scale={time_scale}s/unit)",
    )
    return 0 if ok else 1


def cmd_run_socket(args: argparse.Namespace) -> int:
    from repro.runtime.socket_host import DEFAULT_TIME_SCALE, run_agreement_socket

    params = _params(args)
    general = args.general
    try:
        byz_id, byzantine = _wallclock_attack_cast(
            "run-socket", args.attack, general, params
        )
    except SystemExit as exc:
        return int(exc.code)

    time_scale = args.time_scale if args.time_scale is not None else DEFAULT_TIME_SCALE
    report, decisions = run_agreement_socket(
        n=params.n,
        f=params.f,
        seed=args.seed,
        value=args.value,
        general=general,
        byzantine=byzantine,
        time_scale=time_scale,
        delta=args.delta,
        rho=args.rho,
        timeout_units=args.timeout_units,
        codec=args.codec,
        uvloop=args.uvloop,
    )

    leaked = {i: c for i, c in report.live_timers.items() if c != 0}
    dirty = {i: c for i, c in report.exit_codes.items() if c != 0}
    rejected = {i: c for i, c in sorted(report.rejected_by_node.items()) if c}
    ok = _wallclock_verdict(
        decisions,
        sorted(report.correct_ids),
        byz_id if byzantine else None,
        args.attack,
        args.value,
        f"transport: {report.sent_count} sent, {report.delivered_count} delivered, "
        f"{report.rejected_count} rejected frames "
        f"(time_scale={time_scale}s/unit, udp localhost)\n"
        f"rejected/node: {rejected if rejected else 'none'}\n"
        f"live timers: {'all drained' if not leaked else leaked}\n"
        f"children:    {'all exited 0' if not dirty else dirty}",
    )
    return 0 if (ok and report.clean_exit) else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.live import run_chaos_agreement

    params = _params(args)
    try:
        chaos = run_chaos_agreement(
            n=params.n,
            f=params.f,
            seed=args.seed,
            value=args.value,
            general=args.general,
            time_scale=args.time_scale,
            kill_at_d=args.kill_at_d,
            victims=args.victims,
            recovery_bound_d=args.recovery_bound_d,
            timeout_units=args.timeout_units,
            restart_backoff_s=args.restart_backoff_s,
            trace=args.trace,
            delta=args.delta,
            rho=args.rho,
            codec=args.codec,
        )
    except ValueError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2

    report = chaos.report
    print(f"victims: {chaos.victims} (SIGKILL + full state loss, first at "
          f"{chaos.kill_at_d:g}d, scrambled respawn)")
    for node_id in sorted(report.correct_ids):
        dec = report.decisions.get(node_id)
        tags = []
        if node_id in chaos.victims:
            tags.append(f"restarts={report.restart_counts.get(node_id, 0)}")
            latency = chaos.per_victim_latency_d.get(node_id)
            if latency is not None:
                tags.append(f"recovered in {latency:.1f}d")
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        if dec is None:
            print(f"node {node_id}: (no return within timeout){suffix}")
        else:
            outcome = "ABORT" if dec.value is BOTTOM else repr(dec.value)
            print(f"node {node_id}: {outcome} at local={dec.returned_local:.2f}"
                  f"{suffix}")

    rejected = {i: c for i, c in sorted(report.rejected_by_node.items()) if c}
    leaked = {i: c for i, c in report.live_timers.items() if c != 0}
    bad_exit = {
        i: why for i, why in sorted(report.exit_reasons.items()) if why != "ok"
    }
    print(f"transport: {report.sent_count} sent, {report.delivered_count} "
          f"delivered, {report.rejected_count} rejected frames")
    print(f"rejected/node: {rejected if rejected else 'none'}")
    print(f"exit reasons: {bad_exit if bad_exit else 'all ok'}")
    print(f"live timers: {'all drained' if not leaked else leaked}")
    latency = (f"{chaos.recovery_latency_d:.1f}d"
               if chaos.recovery_latency_d is not None else "n/a")
    print(f"recovery: {latency} (bound {chaos.recovery_bound_d:.1f}d)")
    print(f"agreed={chaos.agreed} converged={chaos.converged} "
          f"victims_recovered={chaos.victims_recovered} "
          f"clean_exit={report.clean_exit}")
    print(f"chaos verdict: {'OK' if chaos.ok else 'FAILED'}")
    return 0 if chaos.ok else 1


def _run_service(args: argparse.Namespace):
    """Run one service workload on the selected backend; returns the report.

    The asyncio report is a :class:`~repro.service.service.ServiceReport`,
    the socket one a :class:`~repro.service.socket_service.
    SocketServiceReport`; both carry the fields the printers below read.
    """
    f = args.f if args.f is not None else max_faults(args.n)
    params = ProtocolParams(n=args.n, f=f, delta=args.delta, rho=args.rho)
    if args.primary >= args.n:
        print(f"service: primary {args.primary} not in 0..{args.n - 1}",
              file=sys.stderr)
        raise SystemExit(2)
    duration_s = args.commands / args.rate
    if args.backend == "asyncio":
        import asyncio

        async def body():
            from repro.runtime.aio import AsyncioCluster
            from repro.service import ReplicatedLogService

            cluster = AsyncioCluster(
                params, seed=args.seed, time_scale=args.time_scale
            )
            service = ReplicatedLogService(
                cluster,
                primary=args.primary,
                window=args.window,
                max_batch=args.batch,
            )
            plane = None
            if args.metrics:
                from repro.obs.control import AsyncioControlPlane

                plane = AsyncioControlPlane(
                    cluster, service, port=args.control_port
                ).start()
                print(f"control: {plane.server.url}", flush=True)
            try:
                return await service.run_workload(
                    rate=args.rate,
                    total=args.commands,
                    seed=args.seed,
                    poisson=not args.fixed,
                    drain_timeout_s=max(30.0, 3.0 * duration_s),
                )
            finally:
                if plane is not None:
                    await plane.close()
                cluster.close()

        return asyncio.run(body())

    from repro.service.socket_service import SocketLogService

    # Children exit at this protocol-time deadline no matter what the
    # parent does -- the orphan backstop.  Budget 3x the offered duration
    # plus settle slack, converted to units.
    timeout_units = (3.0 * duration_s + 60.0) / args.time_scale
    service = SocketLogService(
        params,
        primary=args.primary,
        window=args.window,
        max_batch=args.batch,
        seed=args.seed,
        time_scale=args.time_scale,
        timeout_units=timeout_units,
        supervise=args.supervise,
        metrics=args.metrics,
    )
    plane = None
    if args.metrics:
        from repro.obs.control import SocketControlPlane

        plane = SocketControlPlane(service, port=args.control_port).start()
        print(f"control: {plane.server.url}", flush=True)
    try:
        return service.run_workload(
            rate=args.rate,
            total=args.commands,
            seed=args.seed,
            poisson=not args.fixed,
            settle_timeout_s=max(30.0, duration_s),
        )
    finally:
        if plane is not None:
            plane.close()


def _service_verdict(args: argparse.Namespace, report) -> int:
    applied = report.commands_applied
    ok = report.identical_logs and applied == args.commands
    state = "OK" if ok else "FAIL"
    print(f"{state}: identical logs at every correct replica: "
          f"{report.identical_logs}; applied {applied}/{args.commands}")
    return 0 if ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.harness.benchrecord import summarize_latencies

    report = _run_service(args)
    lat = summarize_latencies(report.latencies)
    print(f"backend={args.backend} n={args.n} window={args.window} "
          f"batch={args.batch} rate={args.rate:g}/s "
          f"({'fixed' if args.fixed else 'poisson'})")
    print(f"elapsed:       {report.elapsed_s:.1f}s")
    print(f"throughput:    {report.commands_per_s:.0f} commands/s, "
          f"{report.instances_per_s:.1f} agreement instances/s")
    print(f"slots:         {report.slots_decided} decided, "
          f"{report.slots_aborted} aborted (aborts requeue; peak in-flight "
          f"{report.peak_in_flight})")
    print(f"decide latency: p50 {lat['p50_ms']:.0f}ms  p99 {lat['p99_ms']:.0f}ms  "
          f"max {lat['max_ms']:.0f}ms")
    print(f"live state:    peak {report.peak_live_instances} slot instances, "
          f"{report.peak_live_timers} timers", end="")
    bound = getattr(report, "live_bound", None)
    if bound is not None:
        print(f" (bound {bound}, violations {report.bound_violations} "
              f"across {report.samples} samples)")
    else:
        print()
    repaired = getattr(report, "repaired_entries", 0)
    if repaired:
        print(f"repair:        {repaired} entries adopted via f+1 vouching")
    return _service_verdict(args, report)


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.harness.benchrecord import summarize_latencies

    report = _run_service(args)
    lat = summarize_latencies(report.latencies)
    issued = getattr(report, "commands_issued", None)
    if issued is None:
        issued = report.commands_submitted
    achieved = issued / report.elapsed_s if report.elapsed_s > 0 else 0.0
    print(f"offered:  {args.rate:g} commands/s "
          f"({'fixed' if args.fixed else 'poisson'}), {args.commands} total")
    print(f"achieved: {achieved:.0f} submitted/s, "
          f"{report.commands_per_s:.0f} decided/s over {report.elapsed_s:.1f}s")
    print(f"latency (arrival -> decided): p50 {lat['p50_ms']:.0f}ms  "
          f"p99 {lat['p99_ms']:.0f}ms  mean {lat['mean_ms']:.0f}ms  "
          f"max {lat['max_ms']:.0f}ms")
    return _service_verdict(args, report)


def cmd_stabilize(args: argparse.Namespace) -> int:
    params = _params(args)
    if args.seeds is not None:
        with SeedPool.shared(args.workers) as pool:
            results = pool.map(
                partial(_stabilize_one_seed, params, args.garbage), args.seeds
            )
        all_ok = True
        for seed, (ok, valid) in zip(args.seeds, results):
            print(f"seed {seed}: proposal_unblocked={ok} post_stb_validity={valid}")
            all_ok = all_ok and ok and valid
        print(f"{len(args.seeds)} seeds: {'all recovered' if all_ok else 'FAILURES'}")
        return 0 if all_ok else 1

    cluster = Cluster(ScenarioConfig(params=params, seed=args.seed))
    injector = TransientFaultInjector(
        params, cluster.rng.split("inj"), value_pool=["A", "B", "C"], generals=[0, 1]
    )
    cluster.run_for(5 * params.d)
    injector.havoc(cluster.correct_nodes(), cluster.net, args.garbage)
    print(f"havoc applied (garbage={args.garbage}); waiting Delta_stb = "
          f"{params.delta_stb:.0f}")
    cluster.run_for(params.delta_stb)
    since = cluster.sim.now
    ok = cluster.propose(general=0, value="recovered")
    cluster.run_for(params.delta_agr + 10 * params.d)
    validity = properties.validity(cluster, 0, "recovered", since_real=since)
    print(f"proposal unblocked: {ok}")
    print(f"post-stabilization validity: {validity.holds}")
    return 0 if (ok and validity.holds) else 1


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.harness.report import rows_to_csv
    from repro.harness.suite import (
        SUITE_PRESETS,
        load_suite_config,
        run_suite,
        suite_report,
    )

    if args.config is not None:
        config = load_suite_config(args.config)
    elif args.preset is not None:
        if args.preset not in SUITE_PRESETS:
            print(
                f"unknown preset {args.preset!r}; "
                f"available: {', '.join(sorted(SUITE_PRESETS))}",
                file=sys.stderr,
            )
            return 2
        config = SUITE_PRESETS[args.preset]
    else:
        print("suite: need --preset or --config", file=sys.stderr)
        return 2

    rows = run_suite(
        config,
        workers=args.workers,
        seeds=args.seeds,
        shards=args.shards,
        shard_transport=args.shard_transport,
    )
    if args.csv:
        print(rows_to_csv(rows), end="")
    else:
        print(suite_report(config, rows))
    clean = all(row["agreement_ok"] == row["runs"] for row in rows)
    return 0 if clean else 1


def cmd_list_experiments(args: argparse.Namespace) -> int:
    from repro.harness.registry import list_experiments

    for spec in list_experiments():
        defaults = ", ".join(
            f"{key}={value!r}" for key, value in sorted(spec.defaults.items())
        )
        print(f"{spec.name:6s} {spec.title}")
        if defaults:
            print(f"       defaults: {defaults}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "constants":
        return cmd_constants(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "run-async":
        return cmd_run_async(args)
    if args.command == "run-socket":
        return cmd_run_socket(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "workload":
        return cmd_workload(args)
    if args.command == "stabilize":
        return cmd_stabilize(args)
    if args.command == "suite":
        return cmd_suite(args)
    if args.command == "list-experiments":
        return cmd_list_experiments(args)
    raise AssertionError(args.command)


if __name__ == "__main__":
    sys.exit(main())
