"""Command-line interface.

Three subcommands::

    python -m repro.cli constants --n 7 --f 2 --delta 1.0
        Print the derived timing constants for a configuration.

    python -m repro.cli run --n 7 --f 2 --seed 3 [--attack equivocate]
        Run one agreement scenario and print per-node outcomes plus the
        property-checker verdicts.

    python -m repro.cli stabilize --n 7 --seed 5
        Run the havoc -> Delta_stb -> agree stabilization scenario and
        report recovery.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.params import BOTTOM, ProtocolParams, max_faults
from repro.faults.byzantine import (
    CrashStrategy,
    EquivocatingGeneralStrategy,
    SelectiveGeneralStrategy,
    StaggeredGeneralStrategy,
)
from repro.faults.transient import TransientFaultInjector
from repro.harness import properties
from repro.harness.scenario import Cluster, ScenarioConfig

ATTACKS = ("none", "equivocate", "staggered", "selective", "crash")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Self-stabilizing Byzantine Agreement (Daliot & Dolev, PODC 2006)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--n", type=int, default=7, help="number of nodes")
        p.add_argument("--f", type=int, default=None, help="fault bound (default: max for n)")
        p.add_argument("--delta", type=float, default=1.0, help="message delay bound")
        p.add_argument("--rho", type=float, default=1e-4, help="clock drift bound")

    constants = sub.add_parser("constants", help="print derived timing constants")
    add_model_args(constants)

    run = sub.add_parser("run", help="run one agreement scenario")
    add_model_args(run)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--value", default="v", help="the General's value")
    run.add_argument("--general", type=int, default=0)
    run.add_argument("--attack", choices=ATTACKS, default="none")

    stab = sub.add_parser("stabilize", help="havoc -> wait Delta_stb -> agree")
    add_model_args(stab)
    stab.add_argument("--seed", type=int, default=0)
    stab.add_argument("--garbage", type=int, default=300, help="forged messages")
    return parser


def _params(args: argparse.Namespace) -> ProtocolParams:
    f = args.f if args.f is not None else max_faults(args.n)
    return ProtocolParams(n=args.n, f=f, delta=args.delta, rho=args.rho)


def cmd_constants(args: argparse.Namespace) -> int:
    params = _params(args)
    for name, value in params.describe().items():
        print(f"{name:12s} = {value}")
    return 0


def _attack_strategies(args: argparse.Namespace, params: ProtocolParams) -> dict:
    others = tuple(i for i in range(params.n) if i != args.general)
    half = len(others) // 2
    if args.attack == "none":
        return {}
    if args.attack == "equivocate":
        return {
            args.general: EquivocatingGeneralStrategy(
                "A", "B", others[:half], others[half:]
            )
        }
    if args.attack == "staggered":
        return {
            args.general: StaggeredGeneralStrategy("S", spread_local=10 * params.d)
        }
    if args.attack == "selective":
        return {args.general: SelectiveGeneralStrategy("X", others[: len(others) - 1])}
    if args.attack == "crash":
        return {args.general: CrashStrategy()}
    raise AssertionError(args.attack)


def cmd_run(args: argparse.Namespace) -> int:
    params = _params(args)
    byzantine = _attack_strategies(args, params)
    cluster = Cluster(
        ScenarioConfig(params=params, seed=args.seed, byzantine=byzantine)
    )
    if args.attack == "none":
        t0 = cluster.sim.now
        cluster.propose(general=args.general, value=args.value)
    cluster.run_for(3 * params.delta_agr)

    latest = cluster.latest_decision_per_node(args.general)
    if not latest:
        print("no correct node returned anything")
    for node_id in sorted(latest):
        dec = latest[node_id]
        outcome = "ABORT" if dec.value is BOTTOM else repr(dec.value)
        print(f"node {node_id}: {outcome} at rt={dec.returned_real:.2f}")

    report = properties.agreement(cluster, args.general)
    print(f"agreement: {report.holds}")
    if args.attack == "none":
        validity = properties.validity(cluster, args.general, args.value)
        timeliness = properties.timeliness_validity(cluster, args.general, t0)
        print(f"validity:  {validity.holds}")
        print(f"timeliness: {timeliness.holds}")
        return 0 if (report.holds and validity.holds and timeliness.holds) else 1
    return 0 if report.holds else 1


def cmd_stabilize(args: argparse.Namespace) -> int:
    params = _params(args)
    cluster = Cluster(ScenarioConfig(params=params, seed=args.seed))
    injector = TransientFaultInjector(
        params, cluster.rng.split("inj"), value_pool=["A", "B", "C"], generals=[0, 1]
    )
    cluster.run_for(5 * params.d)
    injector.havoc(cluster.correct_nodes(), cluster.net, args.garbage)
    print(f"havoc applied (garbage={args.garbage}); waiting Delta_stb = "
          f"{params.delta_stb:.0f}")
    cluster.run_for(params.delta_stb)
    since = cluster.sim.now
    ok = cluster.propose(general=0, value="recovered")
    cluster.run_for(params.delta_agr + 10 * params.d)
    validity = properties.validity(cluster, 0, "recovered", since_real=since)
    print(f"proposal unblocked: {ok}")
    print(f"post-stabilization validity: {validity.holds}")
    return 0 if (ok and validity.holds) else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "constants":
        return cmd_constants(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "stabilize":
        return cmd_stabilize(args)
    raise AssertionError(args.command)


if __name__ == "__main__":
    sys.exit(main())
